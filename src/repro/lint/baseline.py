"""The committed allowlist of intentional rule exceptions.

A finding the project has *decided* to keep (the store's LRU wall clock, the
hardware-timing experiment's ``perf_counter``) belongs in the baseline file,
not behind an inline suppression: the baseline is one reviewable JSON
document in which every exception carries a one-line justification, so the
set of waived contracts is auditable at a glance and grows only through an
explicit diff.

Two entry granularities are supported:

* **line entries** carry ``line_content`` — the stripped source line — and
  suppress exactly that statement.  Content, not line *numbers*, is the
  fingerprint, so entries survive unrelated edits that shift lines.
* **file entries** omit ``line_content`` and suppress every finding of one
  rule in one file (the right shape for "this module measures wall time by
  design").

Entries with an empty justification and entries that no longer match any
finding are themselves reported (``BASE001`` / ``BASE002``), keeping the
baseline honest in both directions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from ..errors import ConfigurationError
from .findings import Finding

#: Schema version written to (and required of) the baseline file.
BASELINE_VERSION = 1

#: Placeholder justification written by ``--update-baseline``; the committed
#: baseline must replace it (tests assert no TODOs survive into the repo).
TODO_JUSTIFICATION = "TODO: add a one-line justification for this exception"


@dataclass(frozen=True)
class BaselineEntry:
    """One allowlisted exception: a rule/path pair plus its justification."""

    rule: str
    path: str
    justification: str = ""
    line_content: str | None = None

    def matches(self, finding: Finding) -> bool:
        """Whether this entry suppresses the given finding."""
        if self.rule != finding.rule_id or self.path != finding.path:
            return False
        if self.line_content is None:
            return True
        return self.line_content == finding.line_content

    def to_dict(self) -> dict:
        """JSON-ready rendering (``line_content`` omitted for file entries)."""
        record: dict = {"rule": self.rule, "path": self.path, "justification": self.justification}
        if self.line_content is not None:
            record["line_content"] = self.line_content
        return record

    def describe(self) -> str:
        """Short human identification used in integrity findings."""
        suffix = "" if self.line_content is None else f" [{self.line_content}]"
        return f"{self.rule} @ {self.path}{suffix}"


class Baseline:
    """An ordered collection of :class:`BaselineEntry` with (de)serialisation."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()) -> None:
        self.entries: list[BaselineEntry] = list(entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not Path(path).is_file():
            return cls()
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"unreadable baseline file {path}: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
            version = payload.get("version") if isinstance(payload, dict) else payload
            raise ConfigurationError(f"baseline {path} has unsupported version {version!r}")
        entries = []
        for record in payload.get("entries", []):
            if not isinstance(record, dict) or "rule" not in record or "path" not in record:
                raise ConfigurationError(f"malformed baseline entry in {path}: {record!r}")
            raw_content = record.get("line_content")
            entries.append(
                BaselineEntry(
                    rule=str(record["rule"]),
                    path=str(record["path"]),
                    justification=str(record.get("justification", "")),
                    line_content=None if raw_content is None else str(raw_content),
                )
            )
        return cls(entries)

    def save(self, path: Path) -> None:
        """Write the baseline file (sorted entries, stable formatting)."""
        ordered = sorted(self.entries, key=lambda e: (e.path, e.rule, e.line_content or ""))
        payload = {
            "version": BASELINE_VERSION,
            "note": (
                "Intentional replint exceptions. Every entry must carry a one-line "
                "justification; stale entries are reported by the checker."
            ),
            "entries": [entry.to_dict() for entry in ordered],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def match(self, finding: Finding) -> BaselineEntry | None:
        """The first entry suppressing ``finding``, or ``None``."""
        for entry in self.entries:
            if entry.matches(finding):
                return entry
        return None

    def integrity_findings(self, baseline_name: str) -> list[Finding]:
        """``BASE001`` findings for entries missing a justification."""
        findings = []
        for entry in self.entries:
            if not entry.justification.strip():
                findings.append(
                    Finding(
                        rule_id="BASE001",
                        path=baseline_name,
                        line=0,
                        message=f"baseline entry {entry.describe()} has no justification",
                        fix_hint="add a one-line justification to the baseline entry",
                        line_content=entry.describe(),
                    )
                )
        return findings

    def stale_findings(self, used: set[int], baseline_name: str) -> list[Finding]:
        """``BASE002`` findings for entries that matched nothing this run.

        ``used`` holds ``id()``s of the entries that suppressed at least one
        finding; everything else is dead weight that must be deleted (or the
        contract it waived has silently come back into force).
        """
        findings = []
        for entry in self.entries:
            if id(entry) not in used:
                findings.append(
                    Finding(
                        rule_id="BASE002",
                        path=baseline_name,
                        line=0,
                        message=f"stale baseline entry {entry.describe()} matches no finding",
                        fix_hint="delete the entry (the exception it documented is gone)",
                        line_content=entry.describe(),
                    )
                )
        return findings


def update_baseline(old: Baseline, findings: Iterable[Finding]) -> Baseline:
    """Build the baseline that exactly covers ``findings``.

    File-level entries of ``old`` that still match something are kept as-is
    (they intentionally cover whole modules); line entries keep their old
    justification when the same fingerprint persists; brand-new entries get
    :data:`TODO_JUSTIFICATION` and must be hand-edited before committing.
    """
    findings = list(findings)
    kept: list[BaselineEntry] = []
    for entry in old.entries:
        if entry.line_content is None and any(entry.matches(f) for f in findings):
            kept.append(entry)
    justifications = {
        (e.rule, e.path, e.line_content): e.justification
        for e in old.entries
        if e.line_content is not None
    }
    seen = set()
    for finding in findings:
        if any(entry.matches(finding) for entry in kept):
            continue
        fingerprint = (finding.rule_id, finding.path, finding.line_content)
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        kept.append(
            BaselineEntry(
                rule=finding.rule_id,
                path=finding.path,
                justification=justifications.get(fingerprint, TODO_JUSTIFICATION),
                line_content=finding.line_content,
            )
        )
    return Baseline(kept)
