"""RNG discipline rules: every random draw must flow from a spec-derived seed.

The repository's determinism contract (bit-identical results across
``--jobs`` and backends) holds only because all randomness is drawn from
``np.random.Generator`` instances seeded from spec hashes and repetition
indices.  Three rules police that:

* ``RNG001`` — the stdlib :mod:`random` module is banned in library code
  (process-global state, not seedable per spec);
* ``RNG002`` — legacy ``np.random.<dist>()`` module-level calls are banned
  (they share the hidden global ``RandomState``);
* ``RNG003`` — ``np.random.default_rng()`` must receive a seed that flows
  from a parameter, attribute or derivation call — never a literal and never
  nothing (an unseeded generator is fresh entropy on every run).
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding
from .registry import FileContext, Rule, dotted_name, register

#: ``np.random`` attributes that are constructors, not global-state draws.
_NP_RANDOM_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)


class StdlibRandomRule(Rule):
    """``RNG001``: no stdlib :mod:`random` in library code."""

    rule_id = "RNG001"
    title = "stdlib random module is banned (process-global, not spec-seeded)"
    fix_hint = "draw from an np.random.Generator seeded from the spec hash / repetition index"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag ``import random`` and ``from random import ...``."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(ctx, node, "imports the stdlib random module")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield self.finding(ctx, node, "imports names from the stdlib random module")


class NumpyGlobalRandomRule(Rule):
    """``RNG002``: no legacy ``np.random.<dist>()`` module-level calls."""

    rule_id = "RNG002"
    title = "legacy np.random module-level draws are banned (hidden global RandomState)"
    fix_hint = "call the distribution on an np.random.Generator instance instead"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag calls through the ``np.random`` / ``numpy.random`` module."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if chain is None or len(chain) != 3:
                continue
            if chain[0] in ("np", "numpy") and chain[1] == "random":
                if chain[2] not in _NP_RANDOM_CONSTRUCTORS:
                    yield self.finding(ctx, node, f"calls the legacy global RNG via {'.'.join(chain)}()")


class LiteralSeedRule(Rule):
    """``RNG003``: ``default_rng()`` seeds must flow from data, not literals."""

    rule_id = "RNG003"
    title = "default_rng() with a literal or absent seed is banned outside tests"
    fix_hint = "derive the seed from a parameter or spec hash (e.g. arrival_seed(spec, repetition))"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag ``default_rng()`` calls whose seed is missing or a constant."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if chain is None or chain[-1] != "default_rng":
                continue
            seed: ast.AST | None = None
            if node.args:
                seed = node.args[0]
            for keyword in node.keywords:
                if keyword.arg == "seed":
                    seed = keyword.value
            if seed is None:
                yield self.finding(ctx, node, "calls default_rng() without a seed (fresh entropy)")
            elif isinstance(seed, ast.Constant):
                yield self.finding(ctx, node, f"calls default_rng({seed.value!r}) with a literal seed")


register(StdlibRandomRule())
register(NumpyGlobalRandomRule())
register(LiteralSeedRule())
