"""Rule interface, parsed-file contexts and the process-wide rule registry.

Every check ships as a :class:`Rule` subclass registered through
:func:`register`; the engine (:mod:`repro.lint.engine`) discovers rules via
:func:`all_rules` and never hard-codes the catalogue.  Rules come in two
scopes:

* ``"file"`` rules receive one parsed :class:`FileContext` at a time and
  inspect its AST (the common case: RNG discipline, wall-clock bans, error
  taxonomy, frozen specs, ``__all__`` parity);
* ``"project"`` rules receive the whole :class:`ProjectContext` once per run
  (the engine-epoch manifest guard, which must see the file *set*).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from ..errors import ConfigurationError
from .findings import Finding


@dataclass(frozen=True, eq=False)
class FileContext:
    """A source file parsed once and shared by every file-scope rule.

    Attributes
    ----------
    rel_path:
        POSIX-style path relative to the project root.
    source:
        Raw file text.
    tree:
        The parsed :class:`ast.Module`.
    lines:
        The source split into lines (1-based access via :meth:`line`).
    """

    rel_path: str
    source: str
    tree: ast.Module
    lines: tuple[str, ...]

    def line(self, lineno: int) -> str:
        """The stripped source text of a 1-based line (``""`` out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


@dataclass(frozen=True, eq=False)
class ProjectContext:
    """The whole scanned tree, presented once per run to project-scope rules.

    Attributes
    ----------
    root:
        Absolute project root every relative path is anchored to.
    files:
        Every successfully parsed :class:`FileContext` in the scan.
    manifest_path:
        Location of the committed engine-epoch manifest file.
    """

    root: Path
    files: tuple[FileContext, ...]
    manifest_path: Path


class Rule:
    """Base class for all replint rules.

    Subclasses set the class attributes and override :meth:`check_file`
    (scope ``"file"``) or :meth:`check_project` (scope ``"project"``).
    """

    #: Stable identifier rendered in findings and matched by the baseline.
    rule_id: str = ""
    #: One-line description used by the docs/rule catalogue.
    title: str = ""
    #: Default remediation recipe attached to this rule's findings.
    fix_hint: str = ""
    #: ``"file"`` (per-file AST visitor) or ``"project"`` (whole-tree check).
    scope: str = "file"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one parsed file (file-scope rules override)."""
        return iter(())

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Yield findings for the whole tree (project-scope rules override)."""
        return iter(())

    def finding(self, ctx: FileContext, node: ast.AST, message: str, fix_hint: str | None = None) -> Finding:
        """Build a :class:`Finding` anchored to an AST node of ``ctx``."""
        lineno = int(getattr(node, "lineno", 0) or 0)
        return Finding(
            rule_id=self.rule_id,
            path=ctx.rel_path,
            line=lineno,
            message=message,
            fix_hint=self.fix_hint if fix_hint is None else fix_hint,
            line_content=ctx.line(lineno),
        )


#: rule_id -> registered instance (import :mod:`repro.lint` to populate).
_RULES: dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    """Add a rule instance to the registry (idempotent per rule id)."""
    if not rule.rule_id:
        raise ConfigurationError("a Rule must define a non-empty rule_id")
    _RULES[rule.rule_id] = rule
    return rule


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, ordered by rule id for deterministic runs."""
    return tuple(rule for _, rule in sorted(_RULES.items()))


def get_rule(rule_id: str) -> Rule:
    """Look up one registered rule by id (KeyError if unknown)."""
    return _RULES[rule_id]


def dotted_name(node: ast.AST) -> tuple[str, ...] | None:
    """The dotted chain of a Name/Attribute expression, root first.

    ``np.random.default_rng`` -> ``("np", "random", "default_rng")``; returns
    ``None`` for expressions that are not plain dotted names (subscripts,
    calls, literals), which no chain-matching rule should fire on.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None
