"""``replint`` — the repository's reproducibility contract checker.

The properties this codebase stakes its results on — bit-identical runs
across ``--jobs`` and backends, spec-derived block-ordered RNG,
content-addressed store shards invalidated by ``ENGINE_EPOCH``, the typed
:mod:`repro.errors` taxonomy — are *conventions*: nothing in the type system
stops a stray ``np.random.default_rng(42)``, a wall-clock read in a sampler,
or an engine edit that forgets the epoch bump.  This package enforces them
statically, as an AST-based checker with:

* a rule registry (:mod:`repro.lint.registry`) and per-file visitor engine
  (:mod:`repro.lint.engine`);
* a machine-readable finding format (:mod:`repro.lint.findings`);
* a committed **baseline** of justified exceptions
  (:mod:`repro.lint.baseline`) — intentional deviations are documented
  allowlist entries, not suppressed noise;
* the **engine-epoch manifest guard** (:mod:`repro.lint.epoch`), which turns
  the "bump ``ENGINE_EPOCH`` when results change" convention into a
  mechanical CI failure.

Run it as ``python scripts/replint.py src`` (text or ``--format json``); the
rule catalogue and workflows are documented in ``docs/linting.md``.  The
package is stdlib-only, so the CI job needs no dependencies.
"""

from __future__ import annotations

from . import rules_api, rules_errors, rules_rng, rules_spec, rules_time  # noqa: F401
from .baseline import Baseline, BaselineEntry, update_baseline
from .engine import (
    DEFAULT_BASELINE_NAME,
    DEFAULT_MANIFEST_NAME,
    LintReport,
    iter_python_files,
    lint_source,
    run_lint,
)
from .epoch import (
    EngineEpochRule,
    build_manifest,
    load_manifest,
    read_engine_epoch,
    semantic_hash,
    tracked_files,
    write_manifest,
)
from .findings import Finding
from .registry import FileContext, ProjectContext, Rule, all_rules, get_rule, register

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_MANIFEST_NAME",
    "EngineEpochRule",
    "FileContext",
    "Finding",
    "LintReport",
    "ProjectContext",
    "Rule",
    "all_rules",
    "build_manifest",
    "get_rule",
    "iter_python_files",
    "lint_source",
    "load_manifest",
    "read_engine_epoch",
    "register",
    "run_lint",
    "semantic_hash",
    "tracked_files",
    "update_baseline",
    "write_manifest",
]
