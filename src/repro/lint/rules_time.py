"""Wall-clock rule: engine code may not read the clock.

``TIME001`` bans wall-clock and timer reads (``time.time``, ``time.
monotonic``, ``time.perf_counter``, ``datetime.now`` and friends) in library
code: a clock read in a simulation path is nondeterminism the determinism
tests can only catch after the fact, and a clock read in a cache path can
silently order results by execution time.  The intentional exceptions — the
result store's LRU recency clock, the hardware-timing experiment and the
profiling helpers, which measure wall time *by design* — are documented
file-level entries in the committed baseline, not inline suppressions.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding
from .registry import FileContext, Rule, dotted_name, register

#: Functions of the :mod:`time` module that read a clock.
_TIME_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)

#: Zero-argument constructors/readers of :mod:`datetime` that read a clock.
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})


class WallClockRule(Rule):
    """``TIME001``: no clock reads in engine code."""

    rule_id = "TIME001"
    title = "wall-clock/timer reads are banned in engine code"
    fix_hint = "thread time through the spec/parameters, or baseline a timing module with a justification"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag calls that read the process clock.

        Matches dotted calls (``time.perf_counter()``, ``datetime.now()``,
        ``datetime.datetime.utcnow()``, ``date.today()``) and bare-name calls
        of clock functions imported via ``from time import perf_counter``.
        """
        imported_clocks: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time" and node.level == 0:
                for alias in node.names:
                    if alias.name in _TIME_FUNCS:
                        imported_clocks.add(alias.asname or alias.name)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if chain is None:
                continue
            rendered = ".".join(chain)
            if len(chain) == 1 and chain[0] in imported_clocks:
                yield self.finding(ctx, node, f"reads the clock via {rendered}()")
            elif len(chain) >= 2 and chain[-2] == "time" and chain[-1] in _TIME_FUNCS:
                yield self.finding(ctx, node, f"reads the clock via {rendered}()")
            elif len(chain) >= 2 and chain[-2] in ("datetime", "date") and chain[-1] in _DATETIME_FUNCS:
                yield self.finding(ctx, node, f"reads the clock via {rendered}()")


register(WallClockRule())
