"""Frozen-spec rule: spec dataclasses must stay hashable value objects.

Everything the content-addressed store and the sweep memoisation rely on —
``spec_hash()`` stability, dict-key safety, cross-process equality — assumes
spec objects are immutable and hashable.  ``SPEC001`` enforces the shape
mechanically: any dataclass whose name ends in ``Spec`` must be declared
``frozen=True``, and no field may be annotated with a mutable container
type (``list``, ``dict``, ``set``, ``np.ndarray``, ...) whose identity-based
hash would break content addressing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding
from .registry import FileContext, Rule, dotted_name, register

#: Type names that make a field unhashable (or hash by identity).
_MUTABLE_TYPES = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "List",
        "Dict",
        "Set",
        "DefaultDict",
        "defaultdict",
        "Counter",
        "deque",
        "MutableMapping",
        "MutableSequence",
        "MutableSet",
        "ndarray",
    }
)


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
    """The ``@dataclass`` decorator expression of a class, if present."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        chain = dotted_name(target)
        if chain is not None and chain[-1] == "dataclass":
            return decorator
    return None


def _is_frozen(decorator: ast.expr) -> bool:
    """Whether a ``@dataclass`` decorator passes ``frozen=True``."""
    if not isinstance(decorator, ast.Call):
        return False
    for keyword in decorator.keywords:
        if keyword.arg == "frozen":
            return isinstance(keyword.value, ast.Constant) and keyword.value.value is True
    return False


def _mutable_annotation_names(annotation: ast.AST) -> list[str]:
    """Mutable-container type names appearing anywhere in an annotation."""
    names = []
    for node in ast.walk(annotation):
        chain = dotted_name(node)
        if chain is not None and chain[-1] in _MUTABLE_TYPES:
            names.append(chain[-1])
    return names


def _skipped_wrapper(annotation: ast.AST) -> bool:
    """Whether the annotation is ClassVar/InitVar (not a stored field)."""
    target = annotation.value if isinstance(annotation, ast.Subscript) else annotation
    chain = dotted_name(target)
    return chain is not None and chain[-1] in ("ClassVar", "InitVar")


class FrozenSpecRule(Rule):
    """``SPEC001``: ``*Spec`` dataclasses are frozen with hashable fields."""

    rule_id = "SPEC001"
    title = "*Spec dataclasses must be frozen=True with hashable (immutable) fields"
    fix_hint = "declare @dataclass(frozen=True) and store tuples/scalars, not mutable containers"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag unfrozen ``*Spec`` dataclasses and mutable field annotations."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or not node.name.endswith("Spec"):
                continue
            decorator = _dataclass_decorator(node)
            if decorator is None:
                continue
            if not _is_frozen(decorator):
                yield self.finding(ctx, node, f"dataclass {node.name} is not declared frozen=True")
            for statement in node.body:
                if not isinstance(statement, ast.AnnAssign) or statement.annotation is None:
                    continue
                if _skipped_wrapper(statement.annotation):
                    continue
                mutable = _mutable_annotation_names(statement.annotation)
                if mutable and isinstance(statement.target, ast.Name):
                    yield self.finding(
                        ctx,
                        statement,
                        f"field {node.name}.{statement.target.id} is annotated with "
                        f"unhashable type {mutable[0]}",
                    )


register(FrozenSpecRule())
