"""Denavit–Hartenberg forward kinematics for serial manipulators.

The evaluation metric of the paper is the *distance from origin* of the
robot's end effector over time (Figs. 6, 9 and 10) and the RMSE between the
executed and the defined trajectory (Figs. 8–10).  Computing it requires
mapping the 6-dimensional joint commands ``c_i ∈ R^d`` to Cartesian
end-effector positions, i.e. forward kinematics.

This module implements the standard DH convention: each link ``k`` carries
parameters ``(a, alpha, d, theta_offset)`` and a joint type, and the
homogeneous transform of link ``k`` for joint variable ``q`` is::

    T_k(q) = Rot_z(theta) * Trans_z(d) * Trans_x(a) * Rot_x(alpha)

with ``theta = q + theta_offset`` for revolute joints and
``d = q + d_offset`` for prismatic joints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import DimensionError, RobotError


@dataclass(frozen=True)
class DhLink:
    """One link of a serial manipulator in DH convention.

    Attributes
    ----------
    a:
        Link length (metres).
    alpha:
        Link twist (radians).
    d:
        Link offset (metres); for prismatic joints this is the joint-variable
        offset.
    theta:
        Joint-angle offset (radians); for revolute joints the joint variable
        is added to this offset.
    joint_type:
        ``"revolute"`` or ``"prismatic"``.
    """

    a: float
    alpha: float
    d: float
    theta: float
    joint_type: str = "revolute"

    def __post_init__(self) -> None:
        if self.joint_type not in ("revolute", "prismatic"):
            raise RobotError(f"unknown joint type {self.joint_type!r}")

    def transform(self, q: float) -> np.ndarray:
        """Homogeneous transform of this link for joint value ``q``."""
        if self.joint_type == "revolute":
            theta = self.theta + q
            d = self.d
        else:
            theta = self.theta
            d = self.d + q
        return dh_transform(self.a, self.alpha, d, theta)

    def transform_batch(self, q: np.ndarray) -> np.ndarray:
        """Stacked ``(n, 4, 4)`` transforms for an array of joint values."""
        q = np.asarray(q, dtype=float)
        if self.joint_type == "revolute":
            return dh_transform_batch(self.a, self.alpha, np.broadcast_to(self.d, q.shape), self.theta + q)
        return dh_transform_batch(self.a, self.alpha, self.d + q, np.broadcast_to(self.theta, q.shape))


def dh_transform(a: float, alpha: float, d: float, theta: float) -> np.ndarray:
    """Return the 4x4 homogeneous transform for one set of DH parameters."""
    ct, st = np.cos(theta), np.sin(theta)
    ca, sa = np.cos(alpha), np.sin(alpha)
    return np.array(
        [
            [ct, -st * ca, st * sa, a * ct],
            [st, ct * ca, -ct * sa, a * st],
            [0.0, sa, ca, d],
            [0.0, 0.0, 0.0, 1.0],
        ]
    )


def dh_transform_batch(a: float, alpha: float, d: np.ndarray, theta: np.ndarray) -> np.ndarray:
    """Stacked 4x4 homogeneous transforms for arrays of ``d``/``theta``.

    ``a`` and ``alpha`` are per-link constants; ``d`` and ``theta`` are
    arrays of identical shape carrying one value per trajectory step.
    Returns an array of shape ``theta.shape + (4, 4)``.
    """
    theta = np.asarray(theta, dtype=float)
    d = np.asarray(d, dtype=float)
    ct, st = np.cos(theta), np.sin(theta)
    ca, sa = np.cos(alpha), np.sin(alpha)
    out = np.empty(theta.shape + (4, 4))
    out[..., 0, 0] = ct
    out[..., 0, 1] = -st * ca
    out[..., 0, 2] = st * sa
    out[..., 0, 3] = a * ct
    out[..., 1, 0] = st
    out[..., 1, 1] = ct * ca
    out[..., 1, 2] = -ct * sa
    out[..., 1, 3] = a * st
    out[..., 2, 0] = 0.0
    out[..., 2, 1] = sa
    out[..., 2, 2] = ca
    out[..., 2, 3] = d
    out[..., 3, :3] = 0.0
    out[..., 3, 3] = 1.0
    return out


class ForwardKinematics:
    """Forward-kinematics evaluator for a chain of :class:`DhLink` objects."""

    def __init__(self, links: Sequence[DhLink], base_transform: np.ndarray | None = None) -> None:
        if not links:
            raise RobotError("a kinematic chain needs at least one link")
        self.links = list(links)
        if base_transform is None:
            base_transform = np.eye(4)
        base_transform = np.asarray(base_transform, dtype=float)
        if base_transform.shape != (4, 4):
            raise DimensionError("base_transform must be a 4x4 homogeneous matrix")
        self.base_transform = base_transform

    @property
    def n_joints(self) -> int:
        """Number of actuated joints in the chain."""
        return len(self.links)

    def end_effector_transform(self, joints: Sequence[float]) -> np.ndarray:
        """Full 4x4 pose of the end effector for the given joint vector."""
        joints = np.asarray(joints, dtype=float).ravel()
        if joints.size != self.n_joints:
            raise DimensionError(
                f"expected {self.n_joints} joint values, got {joints.size}"
            )
        transform = self.base_transform.copy()
        for link, q in zip(self.links, joints):
            transform = transform @ link.transform(float(q))
        return transform

    def end_effector_position(self, joints: Sequence[float]) -> np.ndarray:
        """Cartesian ``(x, y, z)`` position of the end effector (metres)."""
        return self.end_effector_transform(joints)[:3, 3]

    def positions(self, joint_trajectory: np.ndarray) -> np.ndarray:
        """Vectorised FK over a ``(n_steps, n_joints)`` joint trajectory.

        Chains one stacked ``(n, 4, 4)`` matmul per link instead of looping
        over trajectory rows in Python — this sits on the RMSE hot path of
        every simulation, serial and batched alike.
        """
        joint_trajectory = np.asarray(joint_trajectory, dtype=float)
        if joint_trajectory.ndim != 2 or joint_trajectory.shape[1] != self.n_joints:
            raise DimensionError(
                f"joint trajectory must have shape (n, {self.n_joints}), got {joint_trajectory.shape}"
            )
        transform = self.base_transform
        for index, link in enumerate(self.links):
            transform = transform @ link.transform_batch(joint_trajectory[:, index])
        return np.ascontiguousarray(transform[:, :3, 3])

    def link_positions(self, joints: Sequence[float]) -> np.ndarray:
        """Positions of every link frame origin (useful for plotting the arm)."""
        joints = np.asarray(joints, dtype=float).ravel()
        if joints.size != self.n_joints:
            raise DimensionError(f"expected {self.n_joints} joint values, got {joints.size}")
        transform = self.base_transform.copy()
        points = [transform[:3, 3].copy()]
        for link, q in zip(self.links, joints):
            transform = transform @ link.transform(float(q))
            points.append(transform[:3, 3].copy())
        return np.array(points)

    def reach(self) -> float:
        """Upper bound on the arm's reach (sum of |a| and |d| of every link)."""
        return float(sum(abs(link.a) + abs(link.d) for link in self.links))
