"""Robot driver loop: command intake, fallback behaviour and execution.

The Niryo One ROS stack expects a control command every Ω ms.  When a command
does not arrive on time (``Δ(c_i) > τ``, with τ = 0 on the real robot) the
stack simply re-feeds the previous command to the motion-planning layer; some
robots instead stop in place.  Either way the executed trajectory deviates
from the defined one — this is precisely the gap FoReCo fills by injecting a
*forecast* command instead.

:class:`RobotDriver` reproduces that loop:

* the caller feeds it one "slot" per command period, saying whether the
  original command arrived on time and, if FoReCo is attached, providing the
  forecast to inject otherwise;
* the driver applies its fallback policy (``hold`` = repeat last command,
  ``stop`` = freeze) when neither a command nor a forecast is available;
* the resulting target stream is executed either perfectly (kinematic mode)
  or through the per-joint PID controller (dynamic mode used for Fig. 10).

The driver records everything in a :class:`DriverLog` for the analysis layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from ..errors import ConfigurationError, DimensionError
from .niryo import NiryoOneArm
from .pid import JointPidController, PidGains
from .trajectory import JointTrajectory

FallbackPolicy = Literal["hold", "stop"]


@dataclass
class DriverConfig:
    """Configuration of the robot driver loop.

    Attributes
    ----------
    command_period_ms:
        Ω, the expected command interval.
    tolerance_ms:
        τ, the extra delay tolerated before a command is considered missing.
    fallback:
        What to execute when a command is missing and no forecast is
        injected: ``"hold"`` repeats the previous target (Niryo behaviour),
        ``"stop"`` keeps the current joint position.
    use_pid:
        When True, targets are executed through the PID joint controller
        (dynamic mode); when False the robot tracks targets exactly
        (kinematic mode), which is what the simulation study needs.
    pid_gains:
        Gains for the dynamic mode.
    """

    command_period_ms: float = 20.0
    tolerance_ms: float = 0.0
    fallback: FallbackPolicy = "hold"
    use_pid: bool = False
    pid_gains: PidGains = field(default_factory=PidGains)

    def __post_init__(self) -> None:
        if self.command_period_ms <= 0:
            raise ConfigurationError("command_period_ms must be positive")
        if self.tolerance_ms < 0:
            raise ConfigurationError("tolerance_ms must be non-negative")
        if self.fallback not in ("hold", "stop"):
            raise ConfigurationError(f"unknown fallback policy {self.fallback!r}")


@dataclass
class DriverLog:
    """Per-slot record of what the driver received and executed."""

    times_s: list[float] = field(default_factory=list)
    targets: list[np.ndarray] = field(default_factory=list)
    executed: list[np.ndarray] = field(default_factory=list)
    on_time: list[bool] = field(default_factory=list)
    injected: list[bool] = field(default_factory=list)

    def executed_trajectory(self, label: str = "executed") -> JointTrajectory:
        """Executed joint trajectory as a :class:`JointTrajectory`."""
        return JointTrajectory(np.array(self.times_s), np.array(self.executed), label=label)

    def target_trajectory(self, label: str = "target") -> JointTrajectory:
        """Targets the driver fed to the control loop."""
        return JointTrajectory(np.array(self.times_s), np.array(self.targets), label=label)

    @property
    def n_missing(self) -> int:
        """Number of slots whose original command did not arrive on time."""
        return sum(1 for flag in self.on_time if not flag)

    @property
    def n_injected(self) -> int:
        """Number of slots where a forecast was injected."""
        return sum(1 for flag in self.injected if flag)


class RobotDriver:
    """Command-period driver loop for a Niryo-One-like arm."""

    def __init__(self, arm: NiryoOneArm | None = None, config: DriverConfig | None = None) -> None:
        self.arm = arm if arm is not None else NiryoOneArm()
        self.config = config if config is not None else DriverConfig()
        self._pid: JointPidController | None = None
        self.reset(self.arm.home_pose())

    def reset(self, initial_joints: np.ndarray) -> None:
        """Reset the driver and its controller to a known joint state."""
        initial_joints = np.asarray(initial_joints, dtype=float).ravel()
        if initial_joints.size != self.arm.n_joints:
            raise DimensionError(f"expected {self.arm.n_joints} joints, got {initial_joints.size}")
        self.current_target = initial_joints.copy()
        self.current_position = initial_joints.copy()
        self.log = DriverLog()
        self._slot = 0
        if self.config.use_pid:
            self._pid = JointPidController(
                self.arm.n_joints,
                dt_s=self.config.command_period_ms / 1000.0,
                gains=self.config.pid_gains,
                velocity_limits=self.arm.limits.velocity_max,
            )
            self._pid.reset(initial_joints)
        else:
            self._pid = None

    # ----------------------------------------------------------- slot intake
    def execute_slot(
        self,
        command: np.ndarray | None,
        forecast: np.ndarray | None = None,
    ) -> np.ndarray:
        """Process one command period.

        Parameters
        ----------
        command:
            The joint command that arrived on time for this slot, or ``None``
            if it was delayed beyond τ or lost.
        forecast:
            Forecast to inject when ``command`` is ``None`` (FoReCo).  Ignored
            when the real command arrived.

        Returns
        -------
        numpy.ndarray
            The joint position actually executed during this slot.
        """
        on_time = command is not None
        injected = False
        if on_time:
            target = np.asarray(command, dtype=float).ravel()
        elif forecast is not None:
            target = np.asarray(forecast, dtype=float).ravel()
            injected = True
        elif self.config.fallback == "hold":
            target = self.current_target.copy()
        else:  # "stop"
            target = self.current_position.copy()

        if target.size != self.arm.n_joints:
            raise DimensionError(f"command must have {self.arm.n_joints} joints, got {target.size}")
        target = self.arm.clamp(target)
        self.current_target = target

        if self._pid is not None:
            executed = self._pid.step(target)
        else:
            executed = target.copy()
        self.current_position = executed

        time_s = self._slot * self.config.command_period_ms / 1000.0
        self.log.times_s.append(time_s)
        self.log.targets.append(target.copy())
        self.log.executed.append(executed.copy())
        self.log.on_time.append(on_time)
        self.log.injected.append(injected)
        self._slot += 1
        return executed

    def run(
        self,
        commands: np.ndarray,
        on_time_mask: np.ndarray,
        forecasts: np.ndarray | None = None,
    ) -> DriverLog:
        """Run a full command stream through the driver.

        Parameters
        ----------
        commands:
            Defined command stream, shape ``(n, d)``.
        on_time_mask:
            Boolean array of length ``n``; False marks commands that did not
            arrive within the tolerance.
        forecasts:
            Optional array of the same shape as ``commands`` giving the value
            to inject for each missing slot (rows for on-time slots are
            ignored).  ``None`` disables injection (the no-forecast baseline).
        """
        commands = np.asarray(commands, dtype=float)
        on_time_mask = np.asarray(on_time_mask, dtype=bool).ravel()
        if commands.ndim != 2 or commands.shape[0] != on_time_mask.size:
            raise DimensionError("commands and on_time_mask lengths must match")
        if forecasts is not None:
            forecasts = np.asarray(forecasts, dtype=float)
            if forecasts.shape != commands.shape:
                raise DimensionError("forecasts must have the same shape as commands")

        self.reset(commands[0])
        for index in range(commands.shape[0]):
            if on_time_mask[index]:
                self.execute_slot(commands[index])
            else:
                forecast = forecasts[index] if forecasts is not None else None
                self.execute_slot(None, forecast=forecast)
        return self.log
