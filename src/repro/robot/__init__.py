"""Robotic manipulator substrate.

The paper's testbed is a 6-axis Niryo One arm driven by the ROS / MoveIt
stack with an inner PID joint controller.  This package provides the pieces
of that stack that the evaluation actually exercises:

* :mod:`repro.robot.kinematics` — Denavit–Hartenberg forward kinematics.
* :mod:`repro.robot.niryo` — a Niryo-One-like 6-DOF arm description (link
  lengths, joint limits, joint speed limits, 50 Hz command interface).
* :mod:`repro.robot.pid` — per-joint PID controller with the settling
  behaviour responsible for the "channel recovery" transient in Fig. 10.
* :mod:`repro.robot.driver` — the robot driver loop: it expects a command
  every Ω ms and, like the Niryo ROS stack, repeats the previous command when
  none arrives on time (this is the no-forecast baseline FoReCo improves on).
* :mod:`repro.robot.trajectory` — trajectory containers plus the
  distance-from-origin metric used by every figure in the evaluation.
"""

from .driver import DriverConfig, DriverLog, RobotDriver
from .kinematics import DhLink, ForwardKinematics, dh_transform
from .niryo import NIRYO_ONE_DH, NiryoOneArm, NiryoOneLimits
from .pid import JointPidController, PidGains
from .trajectory import JointTrajectory, TrajectoryError, distance_from_origin_mm, trajectory_rmse_mm

__all__ = [
    "DriverConfig",
    "DriverLog",
    "RobotDriver",
    "DhLink",
    "ForwardKinematics",
    "dh_transform",
    "NIRYO_ONE_DH",
    "NiryoOneArm",
    "NiryoOneLimits",
    "JointPidController",
    "PidGains",
    "JointTrajectory",
    "TrajectoryError",
    "distance_from_origin_mm",
    "trajectory_rmse_mm",
]
