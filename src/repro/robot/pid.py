"""Per-joint PID controller with velocity limiting.

Every command that reaches the Niryo One is handed to the MoveIt motion
planning layer, whose inner loop is a PID controller (paper §VI-A).  Two
properties of that loop matter for the reproduction:

* while commands keep arriving every Ω ms the joints track them closely
  (small, fast-settling error), and
* after a long burst of repeated/missing commands the controller needs a few
  hundred milliseconds to settle back onto the defined trajectory once fresh
  commands arrive again — the "PID control error" transient highlighted in
  Fig. 10 (≈400 ms).

:class:`JointPidController` integrates a critically-damped-ish PID per joint
at the command period, saturating the commanded joint velocity at the arm's
limits, which reproduces both behaviours.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DimensionError, RobotError


@dataclass
class PidGains:
    """PID gains applied identically to every joint.

    The defaults give a step-response settling time of roughly 300 ms at a
    20 ms control period — in the few-hundred-millisecond range of the
    recovery transient reported in the paper — while keeping the tracking lag
    during smooth motion small compared to the trajectory errors under study.
    """

    kp: float = 15.0
    ki: float = 3.0
    kd: float = 0.4
    integral_limit: float = 2.0

    def __post_init__(self) -> None:
        if self.kp < 0 or self.ki < 0 or self.kd < 0:
            raise RobotError("PID gains must be non-negative")
        if self.integral_limit <= 0:
            raise RobotError("integral_limit must be positive")


class JointPidController:
    """Discrete-time PID tracking controller for an ``n_joints`` manipulator.

    Parameters
    ----------
    n_joints:
        Number of joints (6 for the Niryo One).
    dt_s:
        Control period in seconds (0.02 s at the 50 Hz command rate).
    gains:
        Shared PID gains.
    velocity_limits:
        Per-joint maximum speed in rad/s; the commanded velocity is saturated
        at these values, reproducing the robot's rate limits.
    """

    def __init__(
        self,
        n_joints: int,
        dt_s: float = 0.02,
        gains: PidGains | None = None,
        velocity_limits: np.ndarray | None = None,
    ) -> None:
        if n_joints <= 0:
            raise RobotError("n_joints must be positive")
        if dt_s <= 0:
            raise RobotError("dt_s must be positive")
        self.n_joints = int(n_joints)
        self.dt_s = float(dt_s)
        self.gains = gains if gains is not None else PidGains()
        if velocity_limits is None:
            velocity_limits = np.full(self.n_joints, np.inf)
        velocity_limits = np.asarray(velocity_limits, dtype=float).ravel()
        if velocity_limits.size != self.n_joints:
            raise DimensionError("velocity_limits must have one entry per joint")
        self.velocity_limits = velocity_limits
        self.reset(np.zeros(self.n_joints))

    def reset(self, initial_position: np.ndarray) -> None:
        """Reset the controller state to a known joint position."""
        initial_position = np.asarray(initial_position, dtype=float).ravel()
        if initial_position.size != self.n_joints:
            raise DimensionError("initial_position must have one entry per joint")
        self.position = initial_position.copy()
        self.velocity = np.zeros(self.n_joints)
        self._integral = np.zeros(self.n_joints)
        self._previous_error = np.zeros(self.n_joints)

    def step(self, target: np.ndarray) -> np.ndarray:
        """Advance the joints one control period towards ``target``.

        Returns the new joint position (also stored in :attr:`position`).
        """
        target = np.asarray(target, dtype=float).ravel()
        if target.size != self.n_joints:
            raise DimensionError("target must have one entry per joint")
        gains = self.gains
        error = target - self.position
        self._integral = np.clip(
            self._integral + error * self.dt_s,
            -gains.integral_limit,
            gains.integral_limit,
        )
        derivative = (error - self._previous_error) / self.dt_s
        command_velocity = gains.kp * error + gains.ki * self._integral + gains.kd * derivative
        command_velocity = np.clip(command_velocity, -self.velocity_limits, self.velocity_limits)
        self.position = self.position + command_velocity * self.dt_s
        self.velocity = command_velocity
        self._previous_error = error
        return self.position.copy()

    def track(self, targets: np.ndarray) -> np.ndarray:
        """Track a full ``(n_steps, n_joints)`` target trajectory.

        Returns the executed joint trajectory with the same shape.
        """
        targets = np.asarray(targets, dtype=float)
        if targets.ndim != 2 or targets.shape[1] != self.n_joints:
            raise DimensionError(
                f"targets must have shape (n, {self.n_joints}), got {targets.shape}"
            )
        executed = np.empty_like(targets)
        for index, target in enumerate(targets):
            executed[index] = self.step(target)
        return executed

    def settling_steps(self, step_size: float = 0.1, tolerance: float = 0.02) -> int:
        """Number of control periods to settle after a ``step_size`` rad step.

        Runs an isolated single-joint step-response simulation and returns how
        many periods the joint needs to stay within ``tolerance * step_size``
        of the target.  Used by tests to check the Fig. 10 recovery transient
        is in the few-hundred-millisecond range.
        """
        controller = JointPidController(1, dt_s=self.dt_s, gains=self.gains)
        controller.reset(np.zeros(1))
        target = np.array([step_size])
        for step_index in range(1, 2000):
            position = controller.step(target)
            if abs(position[0] - step_size) <= tolerance * abs(step_size):
                return step_index
        return 2000
