"""Niryo-One-like 6-axis arm description.

The testbed robot is a Niryo One: a 6-axis educational/research manipulator
driven by a Raspberry Pi 3 over ROS at a 50 Hz command rate, with a command
moving offset of 0.04 rad, a maximum Cartesian speed of 0.4 m/s on the
"steeper" axes and 90°/s on the servo axes.

This module encodes:

* ``NIRYO_ONE_DH`` — a DH parameterisation with link lengths close to the
  published Niryo One geometry (base 183 mm, arm 210 mm, forearm 221.5 mm,
  wrist 23.7 + 55 mm), which reproduces the 200–500 mm distance-from-origin
  range seen in the paper's Fig. 6;
* :class:`NiryoOneLimits` — joint position and velocity limits plus the
  command interface constants (Ω, tolerance τ, moving offset);
* :class:`NiryoOneArm` — a convenience façade bundling kinematics, limits and
  helpers (clamping, home pose, millimetre conversions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import DimensionError
from .kinematics import DhLink, ForwardKinematics

#: DH table (a [m], alpha [rad], d [m], theta offset [rad]) for a Niryo-One-like arm.
NIRYO_ONE_DH: tuple[DhLink, ...] = (
    DhLink(a=0.0, alpha=np.pi / 2.0, d=0.183, theta=0.0),
    DhLink(a=0.210, alpha=0.0, d=0.0, theta=np.pi / 2.0),
    DhLink(a=0.0415, alpha=np.pi / 2.0, d=0.0, theta=0.0),
    DhLink(a=0.0, alpha=-np.pi / 2.0, d=0.180, theta=0.0),
    DhLink(a=0.0, alpha=np.pi / 2.0, d=0.0, theta=0.0),
    DhLink(a=0.0, alpha=0.0, d=0.0237 + 0.055, theta=0.0),
)


@dataclass
class NiryoOneLimits:
    """Joint limits and command-interface constants of the Niryo One.

    Attributes
    ----------
    position_min / position_max:
        Per-joint position limits in radians.
    velocity_max:
        Per-joint velocity limits in rad/s.  The base/shoulder/elbow joints
        ("steeper axes") are limited so the end effector stays below
        ~0.4 m/s; the wrist servo axes allow 90°/s (~1.57 rad/s).
    command_period_ms:
        Ω — nominal interval between remote-control commands (20 ms → 50 Hz).
    tolerance_ms:
        τ — extra delay the driver tolerates before discarding a command.
        The Niryo ROS stack uses τ = 0.
    moving_offset_rad:
        Maximum per-command joint increment the remote controller issues.
    """

    position_min: np.ndarray = field(
        default_factory=lambda: np.array([-3.054, -1.571, -1.397, -3.054, -1.745, -2.574])
    )
    position_max: np.ndarray = field(
        default_factory=lambda: np.array([3.054, 0.640, 1.570, 3.054, 1.920, 2.574])
    )
    velocity_max: np.ndarray = field(
        default_factory=lambda: np.array([1.0, 0.8, 1.0, 1.57, 1.57, 1.57])
    )
    command_period_ms: float = 20.0
    tolerance_ms: float = 0.0
    moving_offset_rad: float = 0.04

    def clamp(self, joints: np.ndarray) -> np.ndarray:
        """Clamp a joint vector (or trajectory) to the position limits."""
        joints = np.asarray(joints, dtype=float)
        return np.clip(joints, self.position_min, self.position_max)

    def max_step(self, dt_s: float) -> np.ndarray:
        """Largest per-joint step achievable in ``dt_s`` seconds."""
        return self.velocity_max * dt_s


class NiryoOneArm:
    """Façade bundling the Niryo-One kinematics, limits and conventions."""

    #: Number of actuated joints.
    N_JOINTS = 6

    def __init__(self, limits: NiryoOneLimits | None = None) -> None:
        self.limits = limits if limits is not None else NiryoOneLimits()
        self.kinematics = ForwardKinematics(NIRYO_ONE_DH)

    @property
    def n_joints(self) -> int:
        """Dimensionality ``d`` of a control command."""
        return self.N_JOINTS

    def home_pose(self) -> np.ndarray:
        """Resting joint configuration used as the start of every task."""
        return np.array([0.0, 0.25, -0.8, 0.0, 0.0, 0.0])

    def clamp(self, joints: np.ndarray) -> np.ndarray:
        """Clamp joints to the arm's position limits."""
        return self.limits.clamp(joints)

    def end_effector_mm(self, joints: np.ndarray) -> np.ndarray:
        """End-effector Cartesian position in millimetres."""
        joints = np.asarray(joints, dtype=float).ravel()
        if joints.size != self.N_JOINTS:
            raise DimensionError(f"expected {self.N_JOINTS} joints, got {joints.size}")
        return self.kinematics.end_effector_position(joints) * 1000.0

    def distance_from_origin_mm(self, joints: np.ndarray) -> float:
        """Euclidean distance of the end effector from the robot base (mm).

        This is the scalar the paper plots on the y-axis of Figs. 6, 9, 10.
        """
        return float(np.linalg.norm(self.end_effector_mm(joints)))

    def trajectory_distance_mm(self, joint_trajectory: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`distance_from_origin_mm` over a joint trajectory."""
        joint_trajectory = np.asarray(joint_trajectory, dtype=float)
        if joint_trajectory.ndim != 2 or joint_trajectory.shape[1] != self.N_JOINTS:
            raise DimensionError(
                f"joint trajectory must have shape (n, {self.N_JOINTS}), got {joint_trajectory.shape}"
            )
        positions = self.kinematics.positions(joint_trajectory) * 1000.0
        return np.linalg.norm(positions, axis=1)
