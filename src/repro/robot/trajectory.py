"""Trajectory containers and error metrics.

Every figure of the paper's evaluation reports either the distance-from-origin
trajectory of the end effector (Figs. 6, 9, 10) or the RMSE between the
executed and the defined trajectory (Figs. 7–10).  This module provides the
shared containers and metric functions so experiments, tests and benchmarks
compute them identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import DimensionError
from .niryo import NiryoOneArm


@dataclass
class JointTrajectory:
    """A timestamped joint-space trajectory.

    Attributes
    ----------
    times_s:
        Sample times in seconds, shape ``(n,)``.
    joints:
        Joint positions, shape ``(n, d)``.
    label:
        Free-form label ("defined", "no-forecast", "foreco", ...).
    """

    times_s: np.ndarray
    joints: np.ndarray
    label: str = ""

    def __post_init__(self) -> None:
        self.times_s = np.asarray(self.times_s, dtype=float).ravel()
        self.joints = np.asarray(self.joints, dtype=float)
        if self.joints.ndim != 2:
            raise DimensionError("joints must be a 2-D array (n_steps, n_joints)")
        if self.times_s.size != self.joints.shape[0]:
            raise DimensionError(
                f"times ({self.times_s.size}) and joints ({self.joints.shape[0]}) lengths differ"
            )

    def __len__(self) -> int:
        return self.joints.shape[0]

    @property
    def n_joints(self) -> int:
        """Dimensionality of each command."""
        return self.joints.shape[1]

    @property
    def duration_s(self) -> float:
        """Total duration covered by the trajectory."""
        if len(self) == 0:
            return 0.0
        return float(self.times_s[-1] - self.times_s[0])

    def slice_time(self, start_s: float, end_s: float) -> "JointTrajectory":
        """Return the sub-trajectory with ``start_s <= t <= end_s``."""
        mask = (self.times_s >= start_s) & (self.times_s <= end_s)
        return JointTrajectory(self.times_s[mask], self.joints[mask], label=self.label)

    def distance_from_origin_mm(self, arm: NiryoOneArm | None = None) -> np.ndarray:
        """End-effector distance-from-origin series in millimetres."""
        arm = arm if arm is not None else NiryoOneArm()
        return arm.trajectory_distance_mm(self.joints)


@dataclass
class TrajectoryError:
    """Error summary between an executed and a defined trajectory."""

    rmse_mm: float
    max_error_mm: float
    mean_error_mm: float
    per_step_error_mm: np.ndarray = field(repr=False)

    @classmethod
    def between(
        cls,
        executed: JointTrajectory,
        defined: JointTrajectory,
        arm: NiryoOneArm | None = None,
    ) -> "TrajectoryError":
        """Compute the Cartesian error between two equally-sampled trajectories."""
        if len(executed) != len(defined):
            raise DimensionError(
                f"trajectories must have equal length ({len(executed)} vs {len(defined)})"
            )
        arm = arm if arm is not None else NiryoOneArm()
        executed_mm = arm.kinematics.positions(executed.joints) * 1000.0
        defined_mm = arm.kinematics.positions(defined.joints) * 1000.0
        errors = np.linalg.norm(executed_mm - defined_mm, axis=1)
        return cls(
            rmse_mm=float(np.sqrt(np.mean(errors ** 2))),
            max_error_mm=float(errors.max()) if errors.size else 0.0,
            mean_error_mm=float(errors.mean()) if errors.size else 0.0,
            per_step_error_mm=errors,
        )


def distance_from_origin_mm(joints: np.ndarray, arm: NiryoOneArm | None = None) -> np.ndarray:
    """Distance-from-origin series for a raw ``(n, d)`` joint array."""
    arm = arm if arm is not None else NiryoOneArm()
    return arm.trajectory_distance_mm(np.asarray(joints, dtype=float))


def trajectory_rmse_mm(
    executed: np.ndarray,
    defined: np.ndarray,
    arm: NiryoOneArm | None = None,
) -> float:
    """RMSE (mm) between two raw joint trajectories of equal length.

    This is the headline metric of Figs. 8–10: the root-mean-square Cartesian
    distance between the end effector following ``executed`` and the end
    effector following ``defined``.
    """
    executed = np.asarray(executed, dtype=float)
    defined = np.asarray(defined, dtype=float)
    if executed.shape != defined.shape:
        raise DimensionError(f"trajectory shapes differ: {executed.shape} vs {defined.shape}")
    arm = arm if arm is not None else NiryoOneArm()
    executed_mm = arm.kinematics.positions(executed) * 1000.0
    defined_mm = arm.kinematics.positions(defined) * 1000.0
    errors = np.linalg.norm(executed_mm - defined_mm, axis=1)
    return float(np.sqrt(np.mean(errors ** 2)))
