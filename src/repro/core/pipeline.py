"""FoReCo training pipeline with per-stage timing (paper Table I).

The prototype's training path on the robot consists of four stages whose
durations Table I profiles on the Raspberry Pi 3: *Load Data*,
*Down Sampling*, *Check Quality* and *Training Model*.  The
:class:`TrainingPipeline` reproduces those stages over a
:class:`~repro.core.dataset.CommandDataset`, times each one with a
monotonic clock, and returns both the fitted forecaster and a
:class:`TrainingReport` containing the timings and test accuracy — the inputs
for the Table I / Table II experiments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .._validation import ensure_int
from ..errors import DatasetError
from ..forecasting import Forecaster, forecast_rmse, make_forecaster
from .config import ForecoConfig
from .dataset import CommandDataset, DatasetQualityReport


@dataclass
class PipelineTimings:
    """Wall-clock duration (seconds) of each training-pipeline stage."""

    load_data_s: float = 0.0
    downsampling_s: float = 0.0
    quality_check_s: float = 0.0
    training_s: float = 0.0

    @property
    def total_s(self) -> float:
        """Total pipeline duration."""
        return self.load_data_s + self.downsampling_s + self.quality_check_s + self.training_s

    def as_dict(self) -> dict[str, float]:
        """Stage durations as a plain dictionary (for reports and benches)."""
        return {
            "load_data_s": self.load_data_s,
            "downsampling_s": self.downsampling_s,
            "quality_check_s": self.quality_check_s,
            "training_s": self.training_s,
            "total_s": self.total_s,
        }


@dataclass
class TrainingReport:
    """Result of one training-pipeline run."""

    timings: PipelineTimings
    quality: DatasetQualityReport
    n_training_commands: int
    n_test_commands: int
    test_rmse: float
    inference_time_ms: float
    algorithm: str
    extra: dict = field(default_factory=dict)


class TrainingPipeline:
    """Load → down-sample → quality-check → train, with per-stage timing."""

    def __init__(self, config: ForecoConfig | None = None, downsample_factor: int = 1) -> None:
        self.config = config if config is not None else ForecoConfig()
        self.downsample_factor = ensure_int("downsample_factor", downsample_factor, minimum=1)

    # ------------------------------------------------------------------ run
    def run(self, dataset: CommandDataset) -> tuple[Forecaster, TrainingReport]:
        """Execute the full pipeline on ``dataset``.

        Returns the fitted forecaster and the :class:`TrainingReport`.
        """
        if len(dataset) <= self.config.record + 1:
            raise DatasetError(
                f"dataset must contain more than record+1={self.config.record + 1} commands"
            )
        timings = PipelineTimings()

        # Stage 1: load data (materialise the stored history as an array).
        start = time.perf_counter()
        commands = dataset.to_array()
        timings.load_data_s = time.perf_counter() - start

        # Stage 2: down-sampling.
        start = time.perf_counter()
        if self.downsample_factor > 1:
            commands = commands[:: self.downsample_factor]
        timings.downsampling_s = time.perf_counter() - start

        # Stage 3: quality check.
        start = time.perf_counter()
        staged = CommandDataset(dataset.n_joints, period_ms=dataset.period_ms)
        staged.extend(commands)
        quality = staged.quality_check(repair=True)
        commands = staged.to_array()
        timings.quality_check_s = time.perf_counter() - start

        # Stage 4: model training on the α split, evaluation on the β split.
        start = time.perf_counter()
        split = staged.split(self.config.train_fraction)
        forecaster = make_forecaster(
            self.config.algorithm, record=self.config.record, **self.config.algorithm_options
        )
        forecaster.fit(split.train)
        timings.training_s = time.perf_counter() - start

        test_rmse, inference_ms = self._evaluate(forecaster, split.test)
        report = TrainingReport(
            timings=timings,
            quality=quality,
            n_training_commands=split.train.shape[0],
            n_test_commands=split.test.shape[0],
            test_rmse=test_rmse,
            inference_time_ms=inference_ms,
            algorithm=self.config.algorithm,
        )
        return forecaster, report

    # ------------------------------------------------------------ evaluation
    def _evaluate(self, forecaster: Forecaster, test_commands: np.ndarray) -> tuple[float, float]:
        """One-step-ahead test RMSE and mean single-forecast inference time."""
        record = forecaster.record
        if test_commands.shape[0] <= record:
            return float("nan"), float("nan")
        max_evaluations = min(200, test_commands.shape[0] - record)
        predictions = []
        actuals = []
        durations = []
        for offset in range(max_evaluations):
            history = test_commands[offset : offset + record]
            actual = test_commands[offset + record]
            start = time.perf_counter()
            prediction = forecaster.predict_next(history)
            durations.append(time.perf_counter() - start)
            predictions.append(prediction)
            actuals.append(actual)
        rmse = forecast_rmse(np.array(predictions), np.array(actuals))
        inference_ms = float(np.mean(durations) * 1000.0)
        return rmse, inference_ms
