"""FoReCo configuration.

Groups every knob of the recovery mechanism in one validated dataclass so
experiments, examples and tests construct FoReCo identically.  Defaults match
the paper's prototype: Ω = 20 ms, τ = 0 ms (the Niryo ROS stack tolerance),
VAR forecasting with the best-performing record length, and an 80 / 20
train/test split (α = 0.8, β = 0.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .._validation import ensure_int, ensure_non_negative, ensure_positive, ensure_probability
from ..errors import ConfigurationError


@dataclass
class ForecoConfig:
    """Configuration of the FoReCo recovery mechanism.

    Attributes
    ----------
    command_period_ms:
        Ω — the interval at which the remote controller issues commands.
    tolerance_ms:
        τ — additional delay tolerated before a command counts as missing;
        FoReCo triggers a forecast when the next command has not arrived by
        ``a(c_i) + Ω + τ``.
    record:
        R — number of past commands fed to the forecasting function ``f``.
    train_fraction:
        α — fraction of the accumulated history ``H`` used for training
        (the remaining β = 1 − α is the test split).
    algorithm:
        Name of the forecasting algorithm ("var", "ma", "seq2seq", "varma",
        "ses"); resolved through :func:`repro.forecasting.make_forecaster`.
    algorithm_options:
        Extra keyword arguments forwarded to the forecaster constructor.
    max_history:
        H — maximum number of commands retained in the dataset (older
        commands are discarded first); ``None`` keeps everything.
    feedback:
        ``"forecast"`` reproduces the paper's prototype, which builds
        forecasts from its own prior forecasts during a loss burst;
        ``"oracle"`` feeds the true (late) commands back instead, an upper
        bound studied in the ablation benches (§VII-C).
    max_step_rad:
        Maximum per-joint difference between an injected forecast and the
        previously executed command.  The remote controller never issues
        commands that differ by more than the robot's moving offset
        (0.04 rad for the Niryo One), so FoReCo clamps its forecasts to the
        same envelope before injecting them; ``None`` disables the clamp
        (studied in the ablation benches).
    """

    command_period_ms: float = 20.0
    tolerance_ms: float = 0.0
    record: int = 10
    train_fraction: float = 0.8
    algorithm: str = "var"
    algorithm_options: dict = field(default_factory=dict)
    max_history: int | None = 200_000
    feedback: str = "forecast"
    max_step_rad: float | None = 0.04

    def __post_init__(self) -> None:
        ensure_positive("command_period_ms", self.command_period_ms)
        ensure_non_negative("tolerance_ms", self.tolerance_ms)
        self.record = ensure_int("record", self.record, minimum=1)
        ensure_probability("train_fraction", self.train_fraction)
        if self.train_fraction <= 0.0 or self.train_fraction >= 1.0:
            raise ConfigurationError("train_fraction must lie strictly between 0 and 1")
        if self.max_history is not None:
            self.max_history = ensure_int("max_history", self.max_history, minimum=2)
        if self.feedback not in ("forecast", "oracle"):
            raise ConfigurationError("feedback must be 'forecast' or 'oracle'")
        if self.max_step_rad is not None:
            ensure_positive("max_step_rad", self.max_step_rad)
        if not isinstance(self.algorithm, str) or not self.algorithm:
            raise ConfigurationError("algorithm must be a non-empty string")

    @property
    def test_fraction(self) -> float:
        """β — the testing fraction of the dataset."""
        return 1.0 - self.train_fraction

    @property
    def deadline_ms(self) -> float:
        """Per-command arrival deadline ``Ω + τ`` relative to the previous arrival."""
        return self.command_period_ms + self.tolerance_ms
