"""FoReCo runtime recovery engine: timeout detection and forecast injection.

At runtime FoReCo sits between the wireless link and the robot driver
(paper Fig. 3).  It awaits a control command every Ω ms; if the next command
has not arrived by ``a(c_i) + Ω + τ`` it forecasts the missing command from
the last ``R`` effective commands and injects the forecast into the driver.
Commands that arrive on time are stored in the dataset and become part of the
forecasting history; commands that miss their deadline are replaced in that
history by the forecast that was injected instead (the paper's constraint
eq. 3), which is why forecast error accumulates during long loss bursts.

:class:`ForecoRecovery` implements that state machine over *slots*: one slot
per command period.  The slot-level notion of "on time" used throughout the
evaluation is ``Δ(c_i) <= Ω + τ`` — i.e. command ``c_i`` is usable if it
arrives before the moment the following command is already due (plus the
configured tolerance).  With the Niryo stack's τ = 0 this reduces to "the
command arrived within its own 20 ms slot".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError, DimensionError
from ..forecasting import Forecaster, make_forecaster
from .config import ForecoConfig
from .dataset import CommandDataset


@dataclass
class RecoveryDecision:
    """What FoReCo decided for one command slot."""

    slot: int
    on_time: bool
    executed_command: np.ndarray
    forecasted: bool

    @property
    def was_recovered(self) -> bool:
        """True when the slot's command was missing and a forecast was injected."""
        return self.forecasted


@dataclass
class BatchedRecoveryResult:
    """Output of :meth:`ForecoRecovery.process_stream_batch`.

    Attributes
    ----------
    executed:
        ``(B, n, d)`` — per-repetition executed commands (real or forecast),
        row-for-row bit-identical to ``B`` serial :meth:`ForecoRecovery.
        process_stream` runs.
    on_time:
        ``(B, n)`` boolean — which commands met the ``Ω + τ`` deadline.
    forecasted:
        ``(B, n)`` boolean — which missing slots were filled by a forecast.
    stats:
        One :class:`RecoveryStats` per repetition.
    """

    executed: np.ndarray
    on_time: np.ndarray
    forecasted: np.ndarray
    stats: "list[RecoveryStats]"


@dataclass
class RecoveryStats:
    """Aggregate statistics of a recovery run."""

    n_slots: int = 0
    n_on_time: int = 0
    n_missing: int = 0
    n_forecasted: int = 0
    forecast_errors_mm: list[float] = field(default_factory=list)

    @property
    def missing_fraction(self) -> float:
        """Fraction of slots whose command missed the deadline."""
        return self.n_missing / self.n_slots if self.n_slots else 0.0

    @property
    def recovery_fraction(self) -> float:
        """Fraction of missing slots FoReCo filled with a forecast."""
        return self.n_forecasted / self.n_missing if self.n_missing else 0.0


class ForecoRecovery:
    """Slot-by-slot recovery engine around a pluggable forecaster."""

    def __init__(
        self,
        config: ForecoConfig | None = None,
        forecaster: Forecaster | None = None,
    ) -> None:
        self.config = config if config is not None else ForecoConfig()
        if forecaster is None:
            forecaster = make_forecaster(
                self.config.algorithm,
                record=self.config.record,
                **self.config.algorithm_options,
            )
        if forecaster.record != self.config.record:
            raise ConfigurationError(
                f"forecaster record ({forecaster.record}) differs from config record ({self.config.record})"
            )
        self.forecaster = forecaster
        self.dataset: CommandDataset | None = None
        self._history: list[np.ndarray] = []
        self.stats = RecoveryStats()
        self._slot = 0

    # ------------------------------------------------------------------ fit
    def train(self, training_commands: np.ndarray) -> "ForecoRecovery":
        """Fit the forecaster on a training command stream (experienced operator)."""
        self.forecaster.fit(training_commands)
        return self

    @property
    def is_ready(self) -> bool:
        """True when the forecaster has been trained."""
        return self.forecaster.is_fitted

    # ---------------------------------------------------------------- reset
    def reset(self, n_joints: int, seed_history: np.ndarray | None = None) -> None:
        """Reset runtime state before a new remote-control session.

        ``seed_history`` optionally pre-populates the effective-command window
        (e.g. with the robot's starting pose) so forecasts are possible from
        the very first slot.
        """
        self.dataset = CommandDataset(
            n_joints, max_history=self.config.max_history, period_ms=self.config.command_period_ms
        )
        self._history = []
        if seed_history is not None:
            seed_history = np.atleast_2d(np.asarray(seed_history, dtype=float))
            if seed_history.shape[1] != n_joints:
                raise DimensionError("seed_history joint dimensionality mismatch")
            self._history = [row.copy() for row in seed_history[-self.config.record :]]
        self.stats = RecoveryStats()
        self._slot = 0

    # ----------------------------------------------------------- per slot
    def is_on_time(self, delay_ms: float) -> bool:
        """Slot-level deadline check: ``Δ(c_i) <= Ω + τ``."""
        return np.isfinite(delay_ms) and delay_ms <= self.config.deadline_ms

    def process_slot(self, command: np.ndarray, delay_ms: float) -> RecoveryDecision:
        """Process one command slot.

        Parameters
        ----------
        command:
            The command the remote controller issued for this slot (the true
            ``c_i``); used directly when it arrives on time, and as the oracle
            feedback value when ``config.feedback == "oracle"``.
        delay_ms:
            The end-to-end delay ``Δ(c_i)`` this command experienced
            (``inf`` when the command was lost).

        Returns
        -------
        RecoveryDecision
            The executed command and whether it was a forecast.
        """
        if self.dataset is None:
            raise ConfigurationError("call reset() before processing slots")
        command = np.asarray(command, dtype=float).ravel()
        if command.size != self.dataset.n_joints:
            raise DimensionError(
                f"command must have {self.dataset.n_joints} joints, got {command.size}"
            )

        on_time = self.is_on_time(float(delay_ms))
        forecasted = False
        if on_time:
            executed = command.copy()
            self.dataset.append(command)
        else:
            executed = self._forecast_missing(command)
            forecasted = executed is not None
            if executed is None:
                # Not enough history (or untrained model): fall back to the
                # robot's native behaviour and repeat the previous command.
                executed = self._history[-1].copy() if self._history else command.copy()

        feedback = command.copy() if (not on_time and self.config.feedback == "oracle") else executed
        self._history.append(feedback.copy())
        if len(self._history) > max(self.config.record, 1):
            self._history = self._history[-self.config.record :]

        self.stats.n_slots += 1
        if on_time:
            self.stats.n_on_time += 1
        else:
            self.stats.n_missing += 1
            if forecasted:
                self.stats.n_forecasted += 1
        decision = RecoveryDecision(
            slot=self._slot, on_time=on_time, executed_command=executed, forecasted=forecasted
        )
        self._slot += 1
        return decision

    def _forecast_missing(self, true_command: np.ndarray) -> np.ndarray | None:
        """Forecast the command for a missing slot, or ``None`` if impossible."""
        if not self.forecaster.is_fitted:
            return None
        if len(self._history) < self.config.record:
            return None
        history = np.array(self._history[-self.config.record :])
        forecast = np.asarray(self.forecaster.predict_next(history), dtype=float).ravel()
        if self.config.max_step_rad is not None:
            # The remote controller never moves a joint by more than the
            # robot's moving offset between consecutive commands, so an
            # injected forecast is clamped to the same per-step envelope
            # around the last executed command.  This keeps iterated
            # forecasts physically plausible during long loss bursts.
            previous = history[-1]
            step = np.clip(forecast - previous, -self.config.max_step_rad, self.config.max_step_rad)
            forecast = previous + step
        return forecast

    # ------------------------------------------------------------ streaming
    def process_stream(self, commands: np.ndarray, delays_ms: np.ndarray) -> np.ndarray:
        """Process a full command stream and return the executed commands.

        ``commands`` has shape ``(n, d)`` and ``delays_ms`` length ``n``
        (``inf`` marks lost commands).  The first command is assumed to arrive
        on time and also seeds the history window.
        """
        commands = np.asarray(commands, dtype=float)
        delays_ms = np.asarray(delays_ms, dtype=float).ravel()
        if commands.ndim != 2 or commands.shape[0] != delays_ms.size:
            raise DimensionError("commands and delays_ms lengths must match")
        self.reset(commands.shape[1], seed_history=commands[:1])
        executed = np.empty_like(commands)
        for index in range(commands.shape[0]):
            decision = self.process_slot(commands[index], float(delays_ms[index]))
            executed[index] = decision.executed_command
        return executed

    def process_stream_batch(
        self, commands: np.ndarray, delays_ms: np.ndarray
    ) -> BatchedRecoveryResult:
        """Process ``B`` independent realisations of one command stream at once.

        This is the vectorized core of the batched session kernel: all ``B``
        repetitions share the command stream but experience different channel
        delays, so their recovery state machines can advance slot by slot in
        lockstep ``(B, ...)`` arrays — one Python iteration per slot instead
        of one per slot *per repetition*.

        Parameters
        ----------
        commands:
            The defined command stream, shape ``(n, d)``.
        delays_ms:
            Per-repetition end-to-end delays, shape ``(B, n)`` (``inf`` marks
            lost commands).  A 1-D array is treated as ``B = 1``.

        Returns
        -------
        BatchedRecoveryResult
            Whose ``executed[b]`` is bit-identical to
            ``process_stream(commands, delays_ms[b])`` on a fresh recovery
            engine, provided the forecaster honours
            :attr:`~repro.forecasting.Forecaster.supports_batch_predict`.

        Notes
        -----
        Unlike :meth:`process_stream` this method keeps no per-slot dataset
        and leaves the instance's serial state (``dataset``, ``stats``)
        untouched; all bookkeeping is returned in the result object.
        """
        commands = np.asarray(commands, dtype=float)
        delays_ms = np.asarray(delays_ms, dtype=float)
        if delays_ms.ndim == 1:
            delays_ms = delays_ms[None, :]
        if commands.ndim != 2 or delays_ms.ndim != 2 or commands.shape[0] != delays_ms.shape[1]:
            raise DimensionError("commands (n, d) and delays_ms (B, n) lengths must match")
        n_batch, n_slots = delays_ms.shape
        n_joints = commands.shape[1]
        record = self.config.record
        max_step = self.config.max_step_rad
        oracle = self.config.feedback == "oracle"
        model_ready = self.forecaster.is_fitted

        on_time = np.isfinite(delays_ms) & (delays_ms <= self.config.deadline_ms)
        executed = np.empty((n_batch, n_slots, n_joints))
        forecasted = np.zeros((n_batch, n_slots), dtype=bool)

        # Rolling effective-command window per repetition, seeded with the
        # first command exactly like the serial path; ``filled`` tracks the
        # serial history length min(1 + slot, record), which gates forecasts.
        history = np.zeros((n_batch, record, n_joints))
        history[:, -1, :] = commands[0]
        filled = 1

        for slot in range(n_slots):
            command = commands[slot]
            missing = ~on_time[:, slot]
            slot_executed = np.broadcast_to(command, (n_batch, n_joints)).copy()
            if missing.any():
                if model_ready and filled >= record:
                    forecasts = self.forecaster.predict_next_batch(history[missing])
                    if max_step is not None:
                        previous = history[missing, -1, :]
                        step = np.clip(forecasts - previous, -max_step, max_step)
                        forecasts = previous + step
                    slot_executed[missing] = forecasts
                    forecasted[missing, slot] = True
                else:
                    # Not enough history yet: repeat the previous effective
                    # command (the robot's native fallback behaviour).
                    slot_executed[missing] = history[missing, -1, :]
            executed[:, slot, :] = slot_executed
            feedback = slot_executed
            if oracle:
                feedback = np.where(missing[:, None], command, slot_executed)
            if record > 1:
                history[:, :-1, :] = history[:, 1:, :]
            history[:, -1, :] = feedback
            filled = min(filled + 1, record)

        stats = []
        for index in range(n_batch):
            n_on_time = int(on_time[index].sum())
            stats.append(
                RecoveryStats(
                    n_slots=n_slots,
                    n_on_time=n_on_time,
                    n_missing=n_slots - n_on_time,
                    n_forecasted=int(forecasted[index].sum()),
                )
            )
        return BatchedRecoveryResult(
            executed=executed, on_time=on_time, forecasted=forecasted, stats=stats
        )
