"""Command dataset accumulated by FoReCo.

FoReCo receives a copy of every control command that reaches the robot and
stores it in a dataset (paper §IV-A).  The dataset keeps a history of up to
``H`` commands; ``αH`` of them are used for training the forecasting model
and ``βH`` for testing.  Before training, the prototype down-samples and
quality-checks the data (these are the "Down Sampling" and "Check Quality"
stages timed in Table I).

:class:`CommandDataset` implements that container plus the two preprocessing
stages:

* **down-sampling** — keep every ``k``-th command, used when the training
  budget on the robot's Raspberry Pi is limited;
* **quality check** — detect NaNs, out-of-range joints, frozen segments and
  physically impossible jumps between consecutive commands; the check either
  reports or repairs depending on ``repair=True``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_command_array, ensure_int, ensure_probability
from ..errors import DatasetError
from ..robot.niryo import NiryoOneLimits


@dataclass
class TrainTestSplit:
    """Chronological train/test split of a command stream."""

    train: np.ndarray
    test: np.ndarray

    @property
    def train_fraction(self) -> float:
        """Achieved α (may differ slightly from the requested one by rounding)."""
        total = self.train.shape[0] + self.test.shape[0]
        return self.train.shape[0] / total if total else 0.0


@dataclass
class DatasetQualityReport:
    """Outcome of the dataset quality check.

    Attributes
    ----------
    n_commands:
        Number of commands inspected.
    n_nan:
        Commands containing NaN or infinite joint values.
    n_out_of_range:
        Commands with at least one joint outside the robot's limits.
    n_jumps:
        Transitions between consecutive commands larger than ``max_step_rad``.
    frozen_fraction:
        Fraction of transitions with no movement at all (long frozen segments
        usually indicate a recording problem).
    repaired:
        Whether offending commands were repaired in place.
    """

    n_commands: int
    n_nan: int
    n_out_of_range: int
    n_jumps: int
    frozen_fraction: float
    repaired: bool

    @property
    def is_clean(self) -> bool:
        """True when no anomalies were detected."""
        return self.n_nan == 0 and self.n_out_of_range == 0 and self.n_jumps == 0


class CommandDataset:
    """Bounded, append-only store of remote-control commands.

    Parameters
    ----------
    n_joints:
        Dimensionality ``d`` of each command.
    max_history:
        H — maximum number of commands retained (FIFO eviction), ``None`` for
        unbounded.
    period_ms:
        Ω, recorded so the dataset knows its own time base.
    """

    def __init__(self, n_joints: int, max_history: int | None = None, period_ms: float = 20.0) -> None:
        self.n_joints = ensure_int("n_joints", n_joints, minimum=1)
        self.max_history = None if max_history is None else ensure_int("max_history", max_history, minimum=2)
        self.period_ms = float(period_ms)
        self._commands: list[np.ndarray] = []

    # ------------------------------------------------------------- mutation
    def append(self, command: np.ndarray) -> None:
        """Append one command (evicting the oldest if the history is full)."""
        command = np.asarray(command, dtype=float).ravel()
        if command.size != self.n_joints:
            raise DatasetError(f"command must have {self.n_joints} joints, got {command.size}")
        if not np.all(np.isfinite(command)):
            raise DatasetError("command contains NaN or infinite values")
        self._commands.append(command.copy())
        if self.max_history is not None and len(self._commands) > self.max_history:
            del self._commands[0 : len(self._commands) - self.max_history]

    def extend(self, commands: np.ndarray) -> None:
        """Append a batch of commands."""
        commands = as_command_array("commands", commands)
        if commands.shape[1] != self.n_joints:
            raise DatasetError(f"commands must have {self.n_joints} joints, got {commands.shape[1]}")
        for command in commands:
            self.append(command)

    def clear(self) -> None:
        """Remove every stored command."""
        self._commands = []

    # -------------------------------------------------------------- access
    def __len__(self) -> int:
        return len(self._commands)

    def to_array(self) -> np.ndarray:
        """All stored commands as an ``(n, d)`` array (copy)."""
        if not self._commands:
            return np.empty((0, self.n_joints))
        return np.array(self._commands)

    def recent(self, count: int) -> np.ndarray:
        """The most recent ``count`` commands (fewer if not enough stored)."""
        count = ensure_int("count", count, minimum=1)
        return self.to_array()[-count:]

    @property
    def duration_s(self) -> float:
        """Wall-clock span covered by the stored commands."""
        return len(self) * self.period_ms / 1000.0

    # -------------------------------------------------------- preprocessing
    def downsample(self, factor: int) -> np.ndarray:
        """Return every ``factor``-th command (the Table I down-sampling stage)."""
        factor = ensure_int("factor", factor, minimum=1)
        data = self.to_array()
        if data.shape[0] == 0:
            raise DatasetError("cannot downsample an empty dataset")
        return data[::factor]

    def quality_check(
        self,
        limits: NiryoOneLimits | None = None,
        max_step_rad: float = 0.2,
        repair: bool = False,
    ) -> DatasetQualityReport:
        """Inspect (and optionally repair) the stored commands.

        Repair policy: NaNs and out-of-range joints are replaced by the
        previous valid command's values (or clamped for the first command);
        jump transitions are left in place but reported, since they may be
        genuine operator motion.
        """
        data = self.to_array()
        if data.shape[0] == 0:
            raise DatasetError("cannot quality-check an empty dataset")
        limits = limits if limits is not None else NiryoOneLimits()

        nan_rows = ~np.all(np.isfinite(data), axis=1)
        clamped = np.clip(data, limits.position_min, limits.position_max)
        out_of_range_rows = np.any(np.abs(clamped - data) > 1e-12, axis=1) & ~nan_rows
        diffs = np.abs(np.diff(data, axis=0))
        jump_rows = np.any(diffs > max_step_rad, axis=1)
        frozen_rows = np.all(diffs == 0.0, axis=1)
        frozen_fraction = float(frozen_rows.mean()) if diffs.shape[0] else 0.0

        if repair:
            repaired = clamped.copy()
            for index in np.where(nan_rows)[0]:
                source = repaired[index - 1] if index > 0 else np.zeros(self.n_joints)
                repaired[index] = source
            self._commands = [row.copy() for row in repaired]

        return DatasetQualityReport(
            n_commands=int(data.shape[0]),
            n_nan=int(nan_rows.sum()),
            n_out_of_range=int(out_of_range_rows.sum()),
            n_jumps=int(jump_rows.sum()),
            frozen_fraction=frozen_fraction,
            repaired=bool(repair),
        )

    # ---------------------------------------------------------- persistence
    def save(self, path: str) -> None:
        """Persist the stored commands to a CSV file (one command per row).

        The file starts with a comment header recording the joint count and
        command period so :meth:`load` can restore an equivalent dataset.
        """
        data = self.to_array()
        header = f"n_joints={self.n_joints} period_ms={self.period_ms}"
        np.savetxt(path, data, delimiter=",", header=header)

    @classmethod
    def load(cls, path: str, max_history: int | None = None) -> "CommandDataset":
        """Load a dataset previously written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            first = handle.readline().strip()
        period_ms = 20.0
        if first.startswith("#"):
            for token in first.lstrip("# ").split():
                key, _, value = token.partition("=")
                if key == "period_ms":
                    period_ms = float(value)
        import warnings

        with warnings.catch_warnings():
            # np.loadtxt warns (and returns an empty array) on data-less
            # files; we turn that case into a DatasetError below.
            warnings.simplefilter("ignore", UserWarning)
            data = np.loadtxt(path, delimiter=",", ndmin=2)
        if data.size == 0:
            raise DatasetError(f"{path} contains no commands")
        dataset = cls(n_joints=data.shape[1], max_history=max_history, period_ms=period_ms)
        dataset.extend(data)
        return dataset

    def split(self, train_fraction: float = 0.8) -> TrainTestSplit:
        """Chronological α / β split of the stored commands."""
        train_fraction = ensure_probability("train_fraction", train_fraction)
        data = self.to_array()
        if data.shape[0] < 2:
            raise DatasetError("need at least two commands to split the dataset")
        cut = int(round(train_fraction * data.shape[0]))
        cut = min(max(cut, 1), data.shape[0] - 1)
        return TrainTestSplit(train=data[:cut], test=data[cut:])
