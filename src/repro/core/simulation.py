"""End-to-end remote-control session: operator → channel → FoReCo → robot.

This module wires the substrates together into the experiment the paper runs
over and over (§VI-C, §VI-D): replay an operator's command stream, subject it
to a wireless channel (analytical 802.11 model, controlled loss bursts or a
jammer), and execute it on the robot twice —

* the **no-forecast baseline**: the stock robot stack.  It executes commands
  *when they arrive*: while no new command has arrived it keeps re-feeding
  the previous one to the control loop, and when delayed commands finally
  make it through the backlogged access-point queue it executes them late —
  so the executed trajectory lags behind (and loses pieces of) the operator's
  motion;
* **FoReCo**: the recovery engine never waits — each slot either executes the
  command that arrived on time or injects a forecast, discarding stale
  commands.

Both executions are compared against the *defined* trajectory (the commands
the operator actually issued, on the Ω time grid) using the Cartesian RMSE of
the end effector.  :func:`compare_baseline_and_foreco` is the single-call
helper the figures, examples and benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError, DimensionError
from ..robot.driver import DriverConfig, RobotDriver
from ..robot.niryo import NiryoOneArm
from ..robot.pid import JointPidController
from ..robot.trajectory import JointTrajectory, trajectory_rmse_mm
from ..wireless.channel import CommandDelayTrace
from .config import ForecoConfig
from .recovery import ForecoRecovery


@dataclass
class SimulationOutcome:
    """Result of one remote-control session simulation.

    Attributes
    ----------
    rmse_no_forecast_mm / rmse_foreco_mm:
        Trajectory RMSE of the baseline and of FoReCo against the defined
        trajectory.
    improvement_factor:
        ``rmse_no_forecast / rmse_foreco`` — the paper's headline "x18 / x2"
        figures.
    late_fraction:
        Fraction of commands that missed their deadline in this run.
    defined / baseline / foreco:
        The three joint trajectories (for plotting Figs. 9/10-style curves).
    recovery_fraction:
        Fraction of missing slots FoReCo managed to fill with a forecast.
    """

    rmse_no_forecast_mm: float
    rmse_foreco_mm: float
    late_fraction: float
    recovery_fraction: float
    defined: JointTrajectory = field(repr=False)
    baseline: JointTrajectory = field(repr=False)
    foreco: JointTrajectory = field(repr=False)

    @property
    def improvement_factor(self) -> float:
        """How many times FoReCo reduces the trajectory RMSE."""
        if self.rmse_foreco_mm <= 0:
            return float("inf")
        return self.rmse_no_forecast_mm / self.rmse_foreco_mm


def baseline_target_indices(delays_ms: np.ndarray, command_period_ms: float) -> np.ndarray:
    """Per-slot command indices executed by the stock (no-forecast) robot stack.

    Command ``c_i`` is generated at ``g_i = i * Ω`` and arrives at
    ``g_i + Δ(c_i)`` (never, if lost).  At every control tick the stock
    stack feeds the most recently *arrived* command to the control loop,
    re-feeding the previous one while nothing new has arrived — which is
    exactly the "laggy" behaviour the paper attributes to delayed
    commands, on top of the outright losses.

    Parameters
    ----------
    delays_ms:
        Per-command end-to-end delays (ms, ``inf`` = lost), shape ``(n,)``.
    command_period_ms:
        Ω, the command period in milliseconds.

    Returns
    -------
    numpy.ndarray of int, shape ``(n,)``
        For each slot, the index of the command the stock stack feeds to the
        control loop (``indices[0]`` is always 0: slots before the first
        arrival hold the initial command).
    """
    delays_ms = np.asarray(delays_ms, dtype=float).ravel()
    period = float(command_period_ms)
    n = delays_ms.size
    arrival_times = np.arange(n) * period + delays_ms
    # Slot s spans (s*Ω, (s+1)*Ω]; command i is usable in slot s once it
    # has arrived by the end of the slot, i.e. from slot
    # ceil(arrival_i / Ω) - 1 onwards (and never before its own slot).
    first_usable_slot = np.full(n, n, dtype=int)
    delivered = np.isfinite(arrival_times)
    slots = np.ceil(arrival_times[delivered] / period).astype(int) - 1
    first_usable_slot[delivered] = np.maximum(
        np.arange(n)[delivered], np.maximum(slots, 0)
    )
    # newest_at[s] = largest command index usable at slot s (-1 if none yet).
    newest_at = np.full(n, -1, dtype=int)
    usable = first_usable_slot < n
    np.maximum.at(newest_at, first_usable_slot[usable], np.arange(n)[usable])
    newest_at = np.maximum.accumulate(newest_at)
    return np.where(newest_at >= 0, newest_at, 0)


class RemoteControlSimulation:
    """Replays a command stream through a channel, with and without FoReCo."""

    def __init__(
        self,
        recovery: ForecoRecovery,
        arm: NiryoOneArm | None = None,
        use_pid: bool = False,
        fallback: str = "hold",
    ) -> None:
        if not recovery.is_ready:
            raise ConfigurationError("the recovery engine must be trained before simulating")
        self.recovery = recovery
        self.arm = arm if arm is not None else NiryoOneArm()
        self.use_pid = bool(use_pid)
        self.fallback = fallback

    # ------------------------------------------------------------------ run
    def run(self, commands: np.ndarray, delays_ms: np.ndarray) -> SimulationOutcome:
        """Execute one session given per-command end-to-end delays."""
        commands = np.asarray(commands, dtype=float)
        delays_ms = np.asarray(delays_ms, dtype=float).ravel()
        if commands.ndim != 2 or commands.shape[0] != delays_ms.size:
            raise DimensionError("commands and delays_ms lengths must match")
        config = self.recovery.config

        # FoReCo pass: compute per-slot executed targets (real or forecast).
        foreco_targets = self.recovery.process_stream(commands, delays_ms)
        on_time_mask = np.array(
            [self.recovery.is_on_time(delay) for delay in delays_ms], dtype=bool
        )
        late_fraction = float(1.0 - on_time_mask.mean())
        recovery_fraction = self.recovery.stats.recovery_fraction

        driver_config = DriverConfig(
            command_period_ms=config.command_period_ms,
            tolerance_ms=config.tolerance_ms,
            fallback=self.fallback,  # type: ignore[arg-type]
            use_pid=self.use_pid,
        )

        # Baseline: execute commands as they arrive (stock stack behaviour).
        baseline_targets = self._baseline_targets(commands, delays_ms)
        baseline_driver = RobotDriver(arm=self.arm, config=driver_config)
        baseline_log = baseline_driver.run(
            baseline_targets, np.ones(commands.shape[0], dtype=bool), forecasts=None
        )

        # FoReCo: inject the recovery engine's forecasts for missing slots.
        foreco_driver = RobotDriver(arm=self.arm, config=driver_config)
        foreco_log = foreco_driver.run(commands, on_time_mask, forecasts=foreco_targets)

        period_s = config.command_period_ms / 1000.0
        times = np.arange(commands.shape[0]) * period_s
        defined = JointTrajectory(times, commands, label="defined")
        baseline = baseline_log.executed_trajectory(label="no-forecast")
        foreco = foreco_log.executed_trajectory(label="foreco")

        return SimulationOutcome(
            rmse_no_forecast_mm=trajectory_rmse_mm(baseline.joints, commands, arm=self.arm),
            rmse_foreco_mm=trajectory_rmse_mm(foreco.joints, commands, arm=self.arm),
            late_fraction=late_fraction,
            recovery_fraction=recovery_fraction,
            defined=defined,
            baseline=baseline,
            foreco=foreco,
        )

    def _baseline_targets(self, commands: np.ndarray, delays_ms: np.ndarray) -> np.ndarray:
        """Per-slot targets executed by the stock (no-forecast) robot stack."""
        period = self.recovery.config.command_period_ms
        return commands[baseline_target_indices(delays_ms, period)]

    def run_trace(self, commands: np.ndarray, trace: CommandDelayTrace) -> SimulationOutcome:
        """Convenience wrapper accepting a :class:`CommandDelayTrace`."""
        delays = trace.delays()
        if delays.size < commands.shape[0]:
            raise DimensionError(
                f"trace has {delays.size} samples but the stream has {commands.shape[0]} commands"
            )
        return self.run(commands, delays[: commands.shape[0]])


class BatchedRemoteControlSimulation:
    """Vectorized variant of :class:`RemoteControlSimulation` over ``B`` runs.

    The paper's headline numbers are means over many repeated sessions that
    share one command stream but see independent channel realisations.  Those
    repetitions are embarrassingly stackable: this class advances all ``B``
    delay traces, recovery state machines and robot trajectories in lockstep
    ``(B, ...)`` arrays, then reduces to one :class:`SimulationOutcome` per
    repetition.  Every array operation involved is elementwise or uses a
    batch-size-invariant reduction, so each outcome is **bit-identical** to
    what a serial :class:`RemoteControlSimulation` run would have produced
    for the same delay trace (this is asserted by the test suite).

    Parameters
    ----------
    recovery:
        A trained recovery engine whose forecaster has
        ``supports_batch_predict = True``.  One shared engine serves the
        whole batch; per-repetition bookkeeping lives in the stacked arrays.
    arm / use_pid / fallback:
        Same meaning as on :class:`RemoteControlSimulation`.
    """

    def __init__(
        self,
        recovery: ForecoRecovery,
        arm: NiryoOneArm | None = None,
        use_pid: bool = False,
        fallback: str = "hold",
    ) -> None:
        if not recovery.is_ready:
            raise ConfigurationError("the recovery engine must be trained before simulating")
        if not getattr(recovery.forecaster, "supports_batch_predict", False):
            raise ConfigurationError(
                f"{type(recovery.forecaster).__name__} does not support batched prediction; "
                "run the serial RemoteControlSimulation instead"
            )
        self.recovery = recovery
        self.arm = arm if arm is not None else NiryoOneArm()
        self.use_pid = bool(use_pid)
        self.fallback = fallback
        # Validates the period/tolerance/fallback combination exactly like
        # the serial driver does.
        self._driver_config = DriverConfig(
            command_period_ms=recovery.config.command_period_ms,
            tolerance_ms=recovery.config.tolerance_ms,
            fallback=fallback,  # type: ignore[arg-type]
            use_pid=self.use_pid,
        )

    # ------------------------------------------------------------------ run
    def run(self, commands: np.ndarray, delays_ms: np.ndarray) -> list[SimulationOutcome]:
        """Execute ``B`` sessions given per-repetition delay traces.

        Parameters
        ----------
        commands:
            The defined command stream, shape ``(n, d)``, shared by every
            repetition.
        delays_ms:
            Per-repetition end-to-end delays, shape ``(B, n)`` (``inf`` =
            lost); a 1-D array is treated as ``B = 1``.

        Returns
        -------
        list[SimulationOutcome]
            One outcome per repetition, in delay-trace order.
        """
        commands = np.asarray(commands, dtype=float)
        delays_ms = np.asarray(delays_ms, dtype=float)
        if delays_ms.ndim == 1:
            delays_ms = delays_ms[None, :]
        if commands.ndim != 2 or delays_ms.ndim != 2 or commands.shape[0] != delays_ms.shape[1]:
            raise DimensionError("commands (n, d) and delays_ms (B, n) lengths must match")
        n_batch, n_slots = delays_ms.shape
        period_ms = self.recovery.config.command_period_ms

        # FoReCo pass: all recovery state machines advance in lockstep.
        batch = self.recovery.process_stream_batch(commands, delays_ms)

        # Baseline pass: the stock stack's "most recently arrived command"
        # rule is exact integer slot arithmetic, computed per repetition.
        baseline_targets = np.empty((n_batch, n_slots, commands.shape[1]))
        for index in range(n_batch):
            baseline_targets[index] = commands[
                baseline_target_indices(delays_ms[index], period_ms)
            ]

        # Both serial driver runs start from the raw first defined command
        # (RobotDriver.run resets to its stream's first row, which is
        # commands[0] for the FoReCo stream and for the baseline stream).
        baseline_executed = self._execute_batch(baseline_targets, initial=commands[0])
        foreco_executed = self._execute_batch(batch.executed, initial=commands[0])

        times = np.arange(n_slots) * (period_ms / 1000.0)
        # The defined trajectory is shared by every repetition and both
        # metric passes: evaluate its forward kinematics once instead of 2B
        # times inside trajectory_rmse_mm (same function of the same input,
        # so the RMSE stays bit-identical to the serial path's).
        defined_mm = self.arm.kinematics.positions(commands) * 1000.0

        def rmse_mm(executed: np.ndarray) -> float:
            executed_mm = self.arm.kinematics.positions(executed) * 1000.0
            errors = np.linalg.norm(executed_mm - defined_mm, axis=1)
            return float(np.sqrt(np.mean(errors ** 2)))

        outcomes = []
        for index in range(n_batch):
            late_fraction = float(1.0 - batch.on_time[index].mean())
            outcomes.append(
                SimulationOutcome(
                    rmse_no_forecast_mm=rmse_mm(baseline_executed[index]),
                    rmse_foreco_mm=rmse_mm(foreco_executed[index]),
                    late_fraction=late_fraction,
                    recovery_fraction=batch.stats[index].recovery_fraction,
                    defined=JointTrajectory(times, commands, label="defined"),
                    baseline=JointTrajectory(
                        times, baseline_executed[index], label="no-forecast"
                    ),
                    foreco=JointTrajectory(times, foreco_executed[index], label="foreco"),
                )
            )
        return outcomes

    # ------------------------------------------------------------- execution
    def _execute_batch(self, targets: np.ndarray, initial: np.ndarray) -> np.ndarray:
        """Drive ``(B, n, d)`` per-slot targets through the robot stack.

        Kinematic mode reduces to the joint-limit clamp; dynamic mode steps
        one :class:`~repro.robot.pid.JointPidController` whose ``B * d``
        "joints" are the stacked repetitions, reusing the serial PID
        implementation verbatim — its math is purely elementwise, so each
        repetition's trajectory is unchanged by the stacking.  ``initial`` is
        the (raw, unclamped) joint state the serial driver resets to.
        """
        limits = self.arm.limits
        clamped = np.clip(targets, limits.position_min, limits.position_max)
        if not self.use_pid:
            return clamped
        n_batch, n_slots, n_joints = clamped.shape
        controller = JointPidController(
            n_batch * n_joints,
            dt_s=self._driver_config.command_period_ms / 1000.0,
            gains=self._driver_config.pid_gains,
            velocity_limits=np.tile(limits.velocity_max, n_batch),
        )
        controller.reset(np.tile(np.asarray(initial, dtype=float).ravel(), n_batch))
        executed = np.empty_like(clamped)
        for slot in range(n_slots):
            stepped = controller.step(clamped[:, slot, :].reshape(-1))
            executed[:, slot, :] = stepped.reshape(n_batch, n_joints)
        return executed


def compare_baseline_and_foreco(
    training_commands: np.ndarray,
    test_commands: np.ndarray,
    delays_ms: np.ndarray,
    config: ForecoConfig | None = None,
    use_pid: bool = False,
) -> SimulationOutcome:
    """Train FoReCo and run one baseline-vs-FoReCo comparison in a single call.

    Parameters
    ----------
    training_commands:
        Experienced-operator stream used to fit the forecaster, shape
        ``(n_train, d)`` in radians.
    test_commands:
        Inexperienced-operator stream replayed through the channel, shape
        ``(n, d)`` in radians (one row per 20 ms Ω slot).
    delays_ms:
        Per-command end-to-end delay in milliseconds (``inf`` = lost),
        length matching ``test_commands``.
    config:
        FoReCo configuration; defaults to the paper's prototype settings.
    use_pid:
        Execute through the PID joint controller (dynamic mode) instead of
        perfect tracking.

    Returns
    -------
    SimulationOutcome
        Baseline and FoReCo trajectory RMSE in millimetres, the late/lost
        command fraction, the recovery fraction and the three executed
        joint trajectories.
    """
    config = config if config is not None else ForecoConfig()
    recovery = ForecoRecovery(config=config)
    recovery.train(training_commands)
    simulation = RemoteControlSimulation(recovery, use_pid=use_pid)
    return simulation.run(test_commands, delays_ms)
