"""End-to-end remote-control session: operator → channel → FoReCo → robot.

This module wires the substrates together into the experiment the paper runs
over and over (§VI-C, §VI-D): replay an operator's command stream, subject it
to a wireless channel (analytical 802.11 model, controlled loss bursts or a
jammer), and execute it on the robot twice —

* the **no-forecast baseline**: the stock robot stack.  It executes commands
  *when they arrive*: while no new command has arrived it keeps re-feeding
  the previous one to the control loop, and when delayed commands finally
  make it through the backlogged access-point queue it executes them late —
  so the executed trajectory lags behind (and loses pieces of) the operator's
  motion;
* **FoReCo**: the recovery engine never waits — each slot either executes the
  command that arrived on time or injects a forecast, discarding stale
  commands.

Both executions are compared against the *defined* trajectory (the commands
the operator actually issued, on the Ω time grid) using the Cartesian RMSE of
the end effector.  :func:`compare_baseline_and_foreco` is the single-call
helper the figures, examples and benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError, DimensionError
from ..robot.driver import DriverConfig, RobotDriver
from ..robot.niryo import NiryoOneArm
from ..robot.trajectory import JointTrajectory, trajectory_rmse_mm
from ..wireless.channel import CommandDelayTrace
from .config import ForecoConfig
from .recovery import ForecoRecovery


@dataclass
class SimulationOutcome:
    """Result of one remote-control session simulation.

    Attributes
    ----------
    rmse_no_forecast_mm / rmse_foreco_mm:
        Trajectory RMSE of the baseline and of FoReCo against the defined
        trajectory.
    improvement_factor:
        ``rmse_no_forecast / rmse_foreco`` — the paper's headline "x18 / x2"
        figures.
    late_fraction:
        Fraction of commands that missed their deadline in this run.
    defined / baseline / foreco:
        The three joint trajectories (for plotting Figs. 9/10-style curves).
    recovery_fraction:
        Fraction of missing slots FoReCo managed to fill with a forecast.
    """

    rmse_no_forecast_mm: float
    rmse_foreco_mm: float
    late_fraction: float
    recovery_fraction: float
    defined: JointTrajectory = field(repr=False)
    baseline: JointTrajectory = field(repr=False)
    foreco: JointTrajectory = field(repr=False)

    @property
    def improvement_factor(self) -> float:
        """How many times FoReCo reduces the trajectory RMSE."""
        if self.rmse_foreco_mm <= 0:
            return float("inf")
        return self.rmse_no_forecast_mm / self.rmse_foreco_mm


class RemoteControlSimulation:
    """Replays a command stream through a channel, with and without FoReCo."""

    def __init__(
        self,
        recovery: ForecoRecovery,
        arm: NiryoOneArm | None = None,
        use_pid: bool = False,
        fallback: str = "hold",
    ) -> None:
        if not recovery.is_ready:
            raise ConfigurationError("the recovery engine must be trained before simulating")
        self.recovery = recovery
        self.arm = arm if arm is not None else NiryoOneArm()
        self.use_pid = bool(use_pid)
        self.fallback = fallback

    # ------------------------------------------------------------------ run
    def run(self, commands: np.ndarray, delays_ms: np.ndarray) -> SimulationOutcome:
        """Execute one session given per-command end-to-end delays."""
        commands = np.asarray(commands, dtype=float)
        delays_ms = np.asarray(delays_ms, dtype=float).ravel()
        if commands.ndim != 2 or commands.shape[0] != delays_ms.size:
            raise DimensionError("commands and delays_ms lengths must match")
        config = self.recovery.config

        # FoReCo pass: compute per-slot executed targets (real or forecast).
        foreco_targets = self.recovery.process_stream(commands, delays_ms)
        on_time_mask = np.array(
            [self.recovery.is_on_time(delay) for delay in delays_ms], dtype=bool
        )
        late_fraction = float(1.0 - on_time_mask.mean())
        recovery_fraction = self.recovery.stats.recovery_fraction

        driver_config = DriverConfig(
            command_period_ms=config.command_period_ms,
            tolerance_ms=config.tolerance_ms,
            fallback=self.fallback,  # type: ignore[arg-type]
            use_pid=self.use_pid,
        )

        # Baseline: execute commands as they arrive (stock stack behaviour).
        baseline_targets = self._baseline_targets(commands, delays_ms)
        baseline_driver = RobotDriver(arm=self.arm, config=driver_config)
        baseline_log = baseline_driver.run(
            baseline_targets, np.ones(commands.shape[0], dtype=bool), forecasts=None
        )

        # FoReCo: inject the recovery engine's forecasts for missing slots.
        foreco_driver = RobotDriver(arm=self.arm, config=driver_config)
        foreco_log = foreco_driver.run(commands, on_time_mask, forecasts=foreco_targets)

        period_s = config.command_period_ms / 1000.0
        times = np.arange(commands.shape[0]) * period_s
        defined = JointTrajectory(times, commands, label="defined")
        baseline = baseline_log.executed_trajectory(label="no-forecast")
        foreco = foreco_log.executed_trajectory(label="foreco")

        return SimulationOutcome(
            rmse_no_forecast_mm=trajectory_rmse_mm(baseline.joints, commands, arm=self.arm),
            rmse_foreco_mm=trajectory_rmse_mm(foreco.joints, commands, arm=self.arm),
            late_fraction=late_fraction,
            recovery_fraction=recovery_fraction,
            defined=defined,
            baseline=baseline,
            foreco=foreco,
        )

    def _baseline_targets(self, commands: np.ndarray, delays_ms: np.ndarray) -> np.ndarray:
        """Per-slot targets executed by the stock (no-forecast) robot stack.

        Command ``c_i`` is generated at ``g_i = i * Ω`` and arrives at
        ``g_i + Δ(c_i)`` (never, if lost).  At every control tick the stock
        stack feeds the most recently *arrived* command to the control loop,
        re-feeding the previous one while nothing new has arrived — which is
        exactly the "laggy" behaviour the paper attributes to delayed
        commands, on top of the outright losses.
        """
        period = self.recovery.config.command_period_ms
        n = commands.shape[0]
        arrival_times = np.arange(n) * period + delays_ms
        # Slot s spans (s*Ω, (s+1)*Ω]; command i is usable in slot s once it
        # has arrived by the end of the slot, i.e. from slot
        # ceil(arrival_i / Ω) - 1 onwards (and never before its own slot).
        first_usable_slot = np.full(n, n, dtype=int)
        delivered = np.isfinite(arrival_times)
        slots = np.ceil(arrival_times[delivered] / period).astype(int) - 1
        first_usable_slot[delivered] = np.maximum(
            np.arange(n)[delivered], np.maximum(slots, 0)
        )
        # newest_at[s] = largest command index usable at slot s (-1 if none yet).
        newest_at = np.full(n, -1, dtype=int)
        usable = first_usable_slot < n
        np.maximum.at(newest_at, first_usable_slot[usable], np.arange(n)[usable])
        newest_at = np.maximum.accumulate(newest_at)
        # Slots before the first arrival hold the initial command c_0.
        return commands[np.where(newest_at >= 0, newest_at, 0)]

    def run_trace(self, commands: np.ndarray, trace: CommandDelayTrace) -> SimulationOutcome:
        """Convenience wrapper accepting a :class:`CommandDelayTrace`."""
        delays = trace.delays()
        if delays.size < commands.shape[0]:
            raise DimensionError(
                f"trace has {delays.size} samples but the stream has {commands.shape[0]} commands"
            )
        return self.run(commands, delays[: commands.shape[0]])


def compare_baseline_and_foreco(
    training_commands: np.ndarray,
    test_commands: np.ndarray,
    delays_ms: np.ndarray,
    config: ForecoConfig | None = None,
    use_pid: bool = False,
) -> SimulationOutcome:
    """Train FoReCo and run one baseline-vs-FoReCo comparison in a single call.

    Parameters
    ----------
    training_commands:
        Experienced-operator stream used to fit the forecaster.
    test_commands:
        Inexperienced-operator stream replayed through the channel.
    delays_ms:
        Per-command end-to-end delay (``inf`` = lost), length matching
        ``test_commands``.
    config:
        FoReCo configuration; defaults to the paper's prototype settings.
    use_pid:
        Execute through the PID joint controller (dynamic mode) instead of
        perfect tracking.
    """
    config = config if config is not None else ForecoConfig()
    recovery = ForecoRecovery(config=config)
    recovery.train(training_commands)
    simulation = RemoteControlSimulation(recovery, use_pid=use_pid)
    return simulation.run(test_commands, delays_ms)
