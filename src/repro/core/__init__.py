"""FoReCo core: the paper's primary contribution.

The building blocks follow Fig. 3 of the paper:

* :mod:`repro.core.config` — the FoReCo configuration (Ω, τ, R, α/β split,
  forecasting algorithm).
* :mod:`repro.core.dataset` — the command dataset FoReCo accumulates from the
  remote controller (history ``H``, train/test split, downsampling and
  quality checks).
* :mod:`repro.core.pipeline` — the training pipeline whose stages (load data,
  down-sampling, quality check, model training) are individually timed, as in
  the paper's Table I.
* :mod:`repro.core.recovery` — the runtime recovery engine: it watches for
  commands that miss their deadline ``a(c_i) + Ω + τ`` and injects forecasts
  into the robot driver.
* :mod:`repro.core.simulation` — an end-to-end remote-control session wiring
  operator commands, the wireless channel, the recovery engine and the robot
  driver; this is what the simulation and experimental evaluations run.
"""

from .config import ForecoConfig
from .dataset import CommandDataset, DatasetQualityReport, TrainTestSplit
from .pipeline import PipelineTimings, TrainingPipeline, TrainingReport
from .recovery import BatchedRecoveryResult, ForecoRecovery, RecoveryDecision, RecoveryStats
from .simulation import (
    BatchedRemoteControlSimulation,
    RemoteControlSimulation,
    SimulationOutcome,
    baseline_target_indices,
    compare_baseline_and_foreco,
)

__all__ = [
    "BatchedRecoveryResult",
    "BatchedRemoteControlSimulation",
    "baseline_target_indices",
    "ForecoConfig",
    "CommandDataset",
    "DatasetQualityReport",
    "TrainTestSplit",
    "PipelineTimings",
    "TrainingPipeline",
    "TrainingReport",
    "ForecoRecovery",
    "RecoveryDecision",
    "RecoveryStats",
    "RemoteControlSimulation",
    "SimulationOutcome",
    "compare_baseline_and_foreco",
]
