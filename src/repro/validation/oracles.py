"""Analytic oracles cross-checking the simulators against closed-form theory.

Three standing oracles, each returning an :class:`~repro.validation.gates.
OracleReport` whose tolerance gates are calibrated to the documented
sampling error at the default draw counts:

:func:`bianchi_oracle`
    The 802.11 contention core at the ``congested-ap`` preset's station
    count.  The simulated i.i.d. contention path
    (:meth:`~repro.wireless.channel.WirelessChannel.sample_trace` with
    ``use_queue=False``) must reproduce the moments, the 99th delay
    percentile and the air-loss rate of the Bianchi-derived
    hyper-exponential service model
    (:class:`~repro.wireless.delay_model.Ieee80211DelayModel`) — the same
    fixed point the hybrid fleet tier classifies APs with.  A loose
    consistency gate additionally checks the full AP-queue simulation at
    the ``congested-ap`` interference parameters against the analytic
    late-probability estimate, which by construction (it ignores queueing)
    is a lower bound on the simulated late rate.

:func:`superposition_oracle`
    The cold-AP delay draws.  :meth:`~repro.wireless.superposition.
    SuperpositionModel.sample_extra_delays` must reproduce the Gaussian
    limit's mean and spread and, for the heavy tail, the Lomax mean and the
    closed-form 99th percentile
    ``(alpha - 1) * mean * ((1 - p)^(-1/alpha) - 1)``.

:func:`cold_fleet_oracle`
    End to end: a hybrid fleet whose every AP classifies cold must (a)
    actually take the analytic path for every admitted session and (b)
    produce mean completion times and recovery fractions matching the
    superposition prediction re-derived independently from the spec.

Every oracle exposes a perturbation knob (``delay_scale``,
``extra_delay_scale``, ``completion_bias_ms``) that rescales or biases the
*simulated* side only.  The mutation-style tests in
``tests/validation/test_mutation.py`` drive those knobs to prove the gates
actually bite — a tolerance wide enough to absorb a 1.5x delay error would
be a fudge factor, not a bound.
"""

from __future__ import annotations

import math

import numpy as np

from .._validation import rng_from
from ..errors import ConfigurationError
from ..fleet.hybrid import HybridFleetEngine, cold_draw_seed
from ..fleet.spec import FleetSpec
from ..scenarios.engine import (
    SessionEngine,
    repetition_seed,
    sample_channel_delays_batch,
)
from ..scenarios.registry import get_scenario
from ..wireless.bianchi import InterferenceSource
from ..wireless.channel import WirelessChannel
from ..wireless.superposition import SuperpositionModel
from .gates import OracleReport, ToleranceGate


def _mixture_quantile(probs: np.ndarray, rates: np.ndarray, p: float) -> float:
    """Quantile of a hyper-exponential mixture by bisection on its CDF.

    Solves ``1 - sum_j probs[j] * exp(-rates[j] * t) = p`` — the mixture has
    no closed-form inverse, but its survival function is strictly decreasing
    so bisection converges to machine precision.
    """
    if not 0.0 < p < 1.0:
        raise ConfigurationError("quantile level must be in (0, 1)")

    def survival(t: float) -> float:
        return float(np.sum(probs * np.exp(-rates * t)))

    target = 1.0 - p
    low, high = 0.0, 1.0
    while survival(high) > target:
        high *= 2.0
        if high > 1e12:  # pragma: no cover - defensive, rates are positive
            raise ConfigurationError("mixture quantile did not bracket")
    for _ in range(200):
        mid = 0.5 * (low + high)
        if survival(mid) > target:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


def bianchi_oracle(
    n_robots: int = 25,
    n_commands: int = 30000,
    queue_commands: int = 2000,
    tolerance_ms: float = 50.0,
    seed: int = 2026,
    delay_scale: float = 1.0,
) -> OracleReport:
    """Cross-check the 802.11 contention simulation against the Bianchi model.

    Parameters
    ----------
    n_robots:
        Contending stations; the default matches the ``congested-ap``
        preset (worst Fig. 8 cell).
    n_commands:
        I.i.d. contention draws for the moment/quantile gates.
    queue_commands:
        Commands pushed through the full AP-queue simulation (with the
        ``congested-ap`` interference source) for the consistency gate.
    tolerance_ms:
        Lateness threshold of the consistency gate.
    seed:
        RNG seed for both simulated paths.
    delay_scale:
        Perturbation knob: multiplies the *simulated* delivered delays
        before comparison.  ``1.0`` is the honest simulator; the mutation
        test sets ``1.5`` and asserts the oracle fails.

    Tolerance bounds (documented; the calibration below was measured over
    12 seeds at the default draw count):

    * mean delay, 6% relative — the hyper-exponential's squared
      coefficient of variation is ~9 at 25 stations, so the standard error
      of the mean over 30000 draws is ``sqrt(SCV / n)`` ~1.7% (measured
      max deviation 2.1%); a 1.5x perturbation (50%) fails decisively.
    * delay standard deviation, 12% relative — fourth-moment noise makes
      the empirical std markedly noisier than the mean (measured max 5.7%).
    * 99th delay percentile, 12% relative vs the numeric mixture-CDF
      inverse — order-statistic noise in the fat tail (measured max 4.7%).
    * air-loss rate, absolute ``4 * sqrt(p (1 - p) / n)`` binomial margin
      around ``a_{m+2}``.
    * queue late rate, absolute 0.10 around the analytic estimate — the
      estimate ignores queueing (which pushes the simulation up) but
      counts every burst-overlapping command as late (which pushes the
      estimate up); at these parameters the two stay within ~0.08 of each
      other across seeds.
    """
    if not float(delay_scale) > 0.0:
        raise ConfigurationError("delay_scale must be > 0")
    contention = WirelessChannel(n_robots=n_robots, seed=seed)
    model = contention.contention_model
    trace = contention.sample_trace(int(n_commands), use_queue=False)
    delays = trace.delays()
    delivered = delays[np.isfinite(delays)] * float(delay_scale)
    if delivered.size == 0:  # pragma: no cover - loss prob is far below 1
        raise ConfigurationError("contention trace delivered no commands")

    service = model.service_distribution()
    expected_std = math.sqrt(service.variance())
    expected_p99 = _mixture_quantile(service.probs, service.rates, 0.99)
    loss_p = model.loss_probability
    loss_margin = 4.0 * math.sqrt(loss_p * (1.0 - loss_p) / int(n_commands))

    gates = [
        ToleranceGate(
            name="mean delivered delay (ms)",
            observed=float(np.mean(delivered)),
            expected=model.mean_delay_ms(),
            rel_tol=0.06,
        ),
        ToleranceGate(
            name="delay std (ms)",
            observed=float(np.std(delivered)),
            expected=expected_std,
            rel_tol=0.12,
        ),
        ToleranceGate(
            name="delay p99 (ms)",
            observed=float(np.percentile(delivered, 99.0)),
            expected=expected_p99,
            rel_tol=0.12,
        ),
        ToleranceGate(
            name="air-loss rate",
            observed=trace.loss_rate(),
            expected=loss_p,
            abs_tol=loss_margin,
        ),
    ]

    # Full-channel consistency: the congested-ap interference parameters
    # through the AP-queue simulation vs the queue-free analytic estimate.
    # (The perturbation knob deliberately does not touch this gate — it
    # scales delays, and this gate compares rates.)
    congested = WirelessChannel(
        n_robots=n_robots,
        interference=InterferenceSource(probability=0.05, duration_slots=100),
        seed=seed + 1,
    )
    queue_trace = congested.sample_trace(int(queue_commands), use_queue=True)
    gates.append(
        ToleranceGate(
            name="queue late rate vs analytic",
            observed=queue_trace.late_rate(float(tolerance_ms)),
            expected=congested.expected_late_probability(float(tolerance_ms)),
            abs_tol=0.10,
        )
    )

    return OracleReport(
        oracle="bianchi",
        params={
            "n_robots": int(n_robots),
            "n_commands": int(n_commands),
            "queue_commands": int(queue_commands),
            "tolerance_ms": float(tolerance_ms),
            "seed": int(seed),
            "delay_scale": float(delay_scale),
        },
        gates=gates,
    )


def superposition_oracle(
    sessions: int = 8,
    delivery_probability: float = 0.5,
    service_ms: float = 2.0,
    period_ms: float = 20.0,
    tail_index: float = 3.0,
    draws: int = 4000,
    seed: int = 2026,
    extra_delay_scale: float = 1.0,
) -> OracleReport:
    """Cross-check the cold-AP delay draws against the superposition limits.

    Parameters
    ----------
    sessions, delivery_probability, service_ms, period_ms, tail_index:
        Superposition parameters (see :class:`~repro.wireless.
        superposition.SuperpositionModel`).  The defaults put the Gaussian
        spread at exactly ``work_std / sqrt(m) = 1.0`` ms around a
        ``~3.83`` ms mean, so the zero-clip is negligible (``P < 1e-4``)
        and the closed-form moments apply unclipped.
    draws:
        Sample size per tail family.
    seed:
        RNG seed for the draws.
    extra_delay_scale:
        Perturbation knob: multiplies the *drawn* delays before comparison
        (``1.0`` = honest; the mutation test uses ``1.5``).

    Tolerance bounds (documented, verified by the calibration tests):

    * Gaussian mean, 3% relative — standard error ``spread / sqrt(draws)``
      is ~0.4% of the mean at the defaults.
    * Gaussian spread, 8% relative — chi-distribution noise on the
      empirical std is ~1.1% at 4000 draws.
    * heavy-tail mean, 10% relative — the Lomax(alpha=3) draw has
      ``std = mean * sqrt(3)``, so the standard error of the mean is ~2.7%.
    * heavy-tail p99, 25% relative vs the closed-form Lomax quantile
      ``(alpha - 1) * mean * ((1 - p)^(-1/alpha) - 1)`` — order-statistic
      noise at the 99th percentile of a fat tail dominates every other
      gate, hence the widest bound (still decisively violated at 1.5x).
    """
    if not float(extra_delay_scale) > 0.0:
        raise ConfigurationError("extra_delay_scale must be > 0")
    draws = int(draws)
    if draws < 100:
        raise ConfigurationError("superposition oracle needs at least 100 draws")
    common = dict(
        sessions=int(sessions),
        delivery_probability=float(delivery_probability),
        service_ms=float(service_ms),
        period_ms=float(period_ms),
    )
    gaussian = SuperpositionModel(tail="gaussian", **common)
    heavy = SuperpositionModel(tail="heavy", tail_index=float(tail_index), **common)
    mean = gaussian.mean_extra_delay_ms()
    spread = gaussian.work_std_ms / math.sqrt(gaussian.sessions)

    rng = rng_from(int(seed))
    gaussian_draws = gaussian.sample_extra_delays(rng, draws) * float(extra_delay_scale)
    heavy_draws = heavy.sample_extra_delays(rng, draws) * float(extra_delay_scale)

    alpha = float(tail_index)
    lomax_p99 = (alpha - 1.0) * mean * ((1.0 - 0.99) ** (-1.0 / alpha) - 1.0)

    gates = [
        ToleranceGate(
            name="gaussian mean extra delay (ms)",
            observed=float(np.mean(gaussian_draws)),
            expected=mean,
            rel_tol=0.03,
        ),
        ToleranceGate(
            name="gaussian spread (ms)",
            observed=float(np.std(gaussian_draws)),
            expected=spread,
            rel_tol=0.08,
        ),
        ToleranceGate(
            name="heavy mean extra delay (ms)",
            observed=float(np.mean(heavy_draws)),
            expected=mean,
            rel_tol=0.10,
        ),
        ToleranceGate(
            name="heavy p99 extra delay (ms)",
            observed=float(np.percentile(heavy_draws, 99.0)),
            expected=lomax_p99,
            rel_tol=0.25,
        ),
    ]
    return OracleReport(
        oracle="superposition",
        params={**common, "tail_index": alpha, "draws": draws, "seed": int(seed),
                "extra_delay_scale": float(extra_delay_scale)},
        gates=gates,
    )


def _cold_fleet_spec(repetitions: int, run_seconds: float) -> FleetSpec:
    """The all-cold validation fleet: 24 operators, 2 per AP, light air-time.

    Two admitted sessions per AP at ``2 ms`` service over a ``20 ms`` period
    put every AP's saturation score around ``0.25`` — well below the default
    ``hot_threshold`` of 0.5, so the hybrid tier must service *every*
    session analytically.
    """
    template = get_scenario(
        "bursty-loss", repetitions=int(repetitions), run_seconds=float(run_seconds)
    )
    return FleetSpec(
        name="validation-cold",
        template=template,
        operators=24,
        aps=12,
        ap_capacity=4,
        ap_service_ms=2.0,
        arrival="simultaneous",
        tier="hybrid",
    )


def cold_fleet_oracle(
    repetitions: int = 4,
    run_seconds: float = 10.0,
    engine: HybridFleetEngine | None = None,
    completion_bias_ms: float = 0.0,
) -> OracleReport:
    """Cross-check the hybrid tier's cold path against the superposition model.

    Runs the all-cold validation fleet (see :func:`_cold_fleet_spec`)
    through :class:`~repro.fleet.hybrid.HybridFleetEngine` and re-derives
    the analytic expectation independently from the spec: the solo
    template's channel realisations (same per-repetition seeds the engine
    uses) give the last-delivery times ``base_last_ms[r]``, and each
    repetition's superposition model (``m = 2`` sessions at the
    repetition's empirical delivery probability) gives the mean extra
    queueing delay.  A cold session's expected completion is then
    ``(mean_r base_last_ms[r] + mean_r extra(r)) / 1000`` seconds — the
    bootstrap index and the extra-delay draw are both unbiased around those
    means.

    Parameters
    ----------
    repetitions, run_seconds:
        Template sizing (kept small: the fleet runs in a few seconds).
    engine:
        Optional pre-built engine (lets tests share session caches).
    completion_bias_ms:
        Perturbation knob: milliseconds added to the *observed* mean
        completion before comparison (``0.0`` = honest simulator).

    Tolerance bounds (documented, verified by the calibration tests):

    * ``hot_aps`` and exact-session count must be exactly zero and the
      analytic-session count must exactly equal the admitted count — the
      classification is deterministic, so these gates have zero width.
    * mean completion, 2% relative — the bootstrap over ``repetitions``
      solo realisations and the Gaussian extra draws move the 96-session
      mean by well under 0.2% of the ~10 s completion.
    * mean recovery fraction vs the solo mean, absolute 0.05 — the cold
      path bootstraps per-repetition solo recovery values, so the session
      mean is a resample of the solo distribution.
    """
    fleet = _cold_fleet_spec(repetitions, run_seconds)
    if engine is None:
        engine = HybridFleetEngine()
    result = engine.run(fleet)

    template = fleet.template
    sessions = engine.sessions if isinstance(engine.sessions, SessionEngine) else SessionEngine()
    solo = sessions.run(template)
    commands = sessions.test_commands(template)
    n_commands = int(commands.shape[0])
    period = float(template.foreco.command_period_ms)

    reps = int(template.repetitions)
    solo_base = sample_channel_delays_batch(
        template.channel,
        n_commands,
        [repetition_seed(template, r) for r in range(reps)],
        command_period_ms=period,
    )
    slot_ms = np.arange(n_commands) * period
    delivered = np.isfinite(solo_base)
    base_last_ms = np.empty(reps)
    mean_extras = np.empty(reps)
    for r in range(reps):
        mask = delivered[r]
        base_last_ms[r] = (
            float(np.max(slot_ms[mask] + solo_base[r][mask]))
            if mask.any()
            else n_commands * period
        )
        model = SuperpositionModel(
            sessions=2,  # two simultaneous sessions per AP in the validation fleet
            delivery_probability=float(mask.mean()),
            service_ms=float(fleet.ap_service_ms),
            period_ms=period,
            tail=fleet.cold_tail,
            tail_index=float(fleet.cold_tail_index),
        )
        mean_extras[r] = model.mean_extra_delay_ms()
    expected_completion_s = float(np.mean(base_last_ms) + np.mean(mean_extras)) / 1000.0

    observed_completion_s = (
        float(np.mean(result.completion_time_s)) + float(completion_bias_ms) / 1000.0
    )
    gates = [
        ToleranceGate(
            name="hot APs",
            observed=float(result.hot_aps),
            expected=0.0,
            abs_tol=0.0,
        ),
        ToleranceGate(
            name="analytic sessions == admitted",
            observed=float(result.analytic_sessions),
            expected=float(result.admitted),
            abs_tol=0.0,
        ),
        ToleranceGate(
            name="mean completion (s)",
            observed=observed_completion_s,
            expected=expected_completion_s,
            rel_tol=0.02,
        ),
        ToleranceGate(
            name="mean recovery fraction",
            observed=float(np.mean(result.recovery_fraction)),
            expected=float(np.mean(solo.recovery_fraction)),
            abs_tol=0.05,
        ),
    ]
    return OracleReport(
        oracle="cold-fleet",
        params={
            "operators": fleet.operators,
            "aps": fleet.aps,
            "ap_service_ms": fleet.ap_service_ms,
            "repetitions": reps,
            "run_seconds": float(run_seconds),
            "cold_draw_seed0": cold_draw_seed(fleet, 0),
            "completion_bias_ms": float(completion_bias_ms),
        },
        gates=gates,
    )


def run_validation(engine: HybridFleetEngine | None = None) -> list[OracleReport]:
    """Run every standing oracle at its default parameters.

    Returns the three reports (Bianchi, superposition, cold fleet) without
    raising; callers gate on ``report.passed`` or call
    :meth:`~repro.validation.gates.OracleReport.check`.
    """
    return [
        bianchi_oracle(),
        superposition_oracle(),
        cold_fleet_oracle(engine=engine),
    ]
