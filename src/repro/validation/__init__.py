"""Standing analytic-oracle validation of the simulators against theory.

The simulators in :mod:`repro.wireless` and :mod:`repro.fleet` implement
models the paper also solves in closed form: the Bianchi DCF saturation
analysis behind the contention service distribution, and the Gaussian /
heavy-tailed superposition limit behind the hybrid tier's cold-AP path.
This package turns those closed forms into *oracles*: each oracle runs the
simulated side at matching parameters and compares moments, tail quantiles
and loss/count invariants through :class:`ToleranceGate` objects with
documented statistical bounds, collected into an :class:`OracleReport`.

The oracles run as a standing test suite (``tests/validation/``), and each
exposes a perturbation knob the mutation-style tests use to prove the
gates bite.  See ``docs/validation.md`` for the workflow and the tolerance
rationale.
"""

from .gates import OracleReport, ToleranceGate
from .oracles import (
    bianchi_oracle,
    cold_fleet_oracle,
    run_validation,
    superposition_oracle,
)

__all__ = [
    "OracleReport",
    "ToleranceGate",
    "bianchi_oracle",
    "cold_fleet_oracle",
    "run_validation",
    "superposition_oracle",
]
