"""Statistical tolerance gates for the analytic-oracle validation suite.

An oracle compares a *simulated* statistic (a moment, a tail quantile, a
loss rate) against its *closed-form* analytic counterpart at matching
parameters.  Each comparison is a :class:`ToleranceGate` — observed value,
expected value, and documented relative/absolute tolerance — and one oracle
run collects its gates into an :class:`OracleReport` with uniform
text/JSON renderings and a typed failure
(:class:`~repro.errors.ValidationError`) for callers that want an
exception instead of a boolean.

The tolerances are *documented bounds*, not fudge factors: every oracle in
:mod:`repro.validation.oracles` states in its docstring where its slack
comes from (sampling error at the configured draw count, or a model term
the closed form deliberately ignores, like residual queueing behind
hyper-exponential service tails).  The mutation-style tests in
``tests/validation/`` verify the gates are real by perturbing the simulated
side and asserting the oracle fails.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from ..errors import ConfigurationError, ValidationError


@dataclass(frozen=True)
class ToleranceGate:
    """One observed-vs-expected comparison with a documented tolerance.

    Attributes
    ----------
    name:
        What is being compared (e.g. ``"mean delivered delay"``).
    observed:
        The simulated/empirical value.
    expected:
        The closed-form analytic value.
    rel_tol:
        Relative tolerance on ``expected`` (``None`` to rely on ``abs_tol``
        alone).
    abs_tol:
        Absolute tolerance (``None`` to rely on ``rel_tol`` alone).

    The gate passes when ``|observed - expected|`` is within the larger of
    the two tolerance margins; at least one tolerance must be given.
    """

    name: str
    observed: float
    expected: float
    rel_tol: float | None = None
    abs_tol: float | None = None

    def __post_init__(self) -> None:
        """Validate the tolerance configuration (never the comparison itself)."""
        if self.rel_tol is None and self.abs_tol is None:
            raise ConfigurationError(f"gate {self.name!r} needs rel_tol and/or abs_tol")
        for label, tol in (("rel_tol", self.rel_tol), ("abs_tol", self.abs_tol)):
            if tol is not None and (not math.isfinite(float(tol)) or float(tol) < 0.0):
                raise ConfigurationError(f"gate {self.name!r}: {label} must be finite and >= 0")

    @property
    def margin(self) -> float:
        """The allowed deviation: ``max(abs_tol, rel_tol * |expected|)``."""
        margins = []
        if self.abs_tol is not None:
            margins.append(float(self.abs_tol))
        if self.rel_tol is not None:
            margins.append(float(self.rel_tol) * abs(float(self.expected)))
        return max(margins)

    @property
    def deviation(self) -> float:
        """``|observed - expected|`` (``inf`` when either side is non-finite)."""
        observed = float(self.observed)
        expected = float(self.expected)
        if not (math.isfinite(observed) and math.isfinite(expected)):
            return float("inf")
        return abs(observed - expected)

    @property
    def passed(self) -> bool:
        """True when the deviation is within the documented margin."""
        return self.deviation <= self.margin

    def to_dict(self) -> dict:
        """JSON-safe rendering of the comparison."""
        return {
            "name": self.name,
            "observed": float(self.observed),
            "expected": float(self.expected),
            "rel_tol": self.rel_tol,
            "abs_tol": self.abs_tol,
            "deviation": self.deviation if math.isfinite(self.deviation) else None,
            "margin": self.margin,
            "passed": self.passed,
        }

    def describe(self) -> str:
        """One report line: verdict, values, deviation vs margin."""
        verdict = "ok  " if self.passed else "FAIL"
        return (
            f"{verdict} {self.name:<34s} observed {float(self.observed):>10.4f} "
            f"expected {float(self.expected):>10.4f} "
            f"(|diff| {self.deviation:.4f} <= {self.margin:.4f})"
        )


@dataclass
class OracleReport:
    """All tolerance gates of one oracle run, plus its parameters.

    Attributes
    ----------
    oracle:
        Oracle name (``"bianchi"``, ``"superposition"``, ...).
    params:
        The matching parameters both sides were evaluated at (JSON-safe).
    gates:
        The individual comparisons, in evaluation order.
    """

    oracle: str
    params: dict = field(default_factory=dict)
    gates: list[ToleranceGate] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every gate passed."""
        return all(gate.passed for gate in self.gates)

    @property
    def failures(self) -> list[ToleranceGate]:
        """The gates that failed, in evaluation order."""
        return [gate for gate in self.gates if not gate.passed]

    def check(self) -> "OracleReport":
        """Return ``self`` if all gates passed, else raise :class:`ValidationError`.

        The exception message carries the full text report, so a failing
        standing-suite run shows every gate, not just the first failure.
        """
        if not self.passed:
            raise ValidationError(self.to_text())
        return self

    def to_dict(self) -> dict:
        """JSON-safe rendering (oracle, params, every gate, verdict)."""
        return {
            "oracle": self.oracle,
            "params": dict(self.params),
            "passed": self.passed,
            "gates": [gate.to_dict() for gate in self.gates],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """JSON text rendering of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    def to_text(self) -> str:
        """Fixed-width text report: one line per gate plus a verdict line."""
        shown = ", ".join(f"{key}={value}" for key, value in self.params.items())
        lines = [f"oracle {self.oracle} ({shown})"]
        lines.extend(gate.describe() for gate in self.gates)
        verdict = "PASSED" if self.passed else f"FAILED ({len(self.failures)} gate(s))"
        lines.append(f"{self.oracle}: {verdict}")
        return "\n".join(lines)
