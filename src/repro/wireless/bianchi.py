"""Bianchi DCF model extended with a non-IEEE 802.11 interference source.

The paper's simulation study (§V) relies on the analytical model of Bosch,
Latré and Blondia [7], itself a refinement of Bianchi's saturation analysis of
the 802.11 Distributed Coordination Function (DCF).  The key quantities it
produces are:

* ``tau`` — the per-slot transmission probability of a station,
* ``p``   — the conditional failure probability of a transmission attempt
  (collision with another station *or* corruption by the interferer),
* the slot-time composition (idle / success / collision / interference),

from which :mod:`repro.wireless.delay_model` derives the retransmission
distribution ``a_j`` and the per-retransmission delays ``E_j[Δ_W]``.

The fixed point follows Bianchi's classic two-equation system

.. math::

    \\tau = \\frac{2 (1 - 2p)}{(1 - 2p)(W_0 + 1) + p W_0 (1 - (2p)^m)}

    p = 1 - (1 - \\tau)^{n - 1} (1 - q_{if})

where the second equation is Bianchi's collision probability multiplied by
the probability that the interference source does not corrupt the slot.  The
interferer is modelled as in [7]: in any idle slot it starts transmitting with
probability ``p_if`` and then occupies the medium for ``T_if`` consecutive
slots, so the stationary probability that an arbitrary slot is covered by
interference is ``q_if = p_if * T_if / (1 + p_if * T_if)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .._validation import ensure_int, ensure_positive, ensure_probability
from ..errors import ChannelError, ConfigurationError


@dataclass
class InterferenceSource:
    """Non-802.11 interference source (e.g. the Silvercrest jammer).

    Attributes
    ----------
    probability:
        Probability ``p_if`` that the source starts emitting in a given idle
        slot.  The paper sweeps 1%, 2.5% and 5%.
    duration_slots:
        Number of consecutive slots ``T_if`` the source occupies once active.
        The paper sweeps 10, 50 and 100 slots.
    """

    probability: float = 0.0
    duration_slots: int = 0

    def __post_init__(self) -> None:
        ensure_probability("interference probability", self.probability)
        self.duration_slots = ensure_int("interference duration_slots", self.duration_slots, minimum=0)

    @property
    def occupancy(self) -> float:
        """Stationary probability that a slot is covered by interference."""
        if self.probability == 0.0 or self.duration_slots == 0:
            return 0.0
        load = self.probability * self.duration_slots
        return load / (1.0 + load)

    @property
    def is_active(self) -> bool:
        """True when the source actually interferes with the channel."""
        return self.occupancy > 0.0


@dataclass
class DcfParameters:
    """Physical and MAC-layer parameters of the IEEE 802.11 link.

    Default values correspond to 802.11n at 2.4 GHz with the short control
    frames used for 50 Hz teleoperation commands, in line with the parameter
    table the paper borrows from [7, Table 2].
    """

    n_stations: int = 5
    cw_min: int = 16
    max_backoff_stage: int = 5
    retry_limit: int = 6
    slot_time_us: float = 9.0
    sifs_us: float = 16.0
    difs_us: float = 34.0
    payload_bits: int = 1024
    phy_rate_mbps: float = 54.0
    ack_bits: int = 112
    header_bits: int = 400
    propagation_us: float = 1.0
    interference: InterferenceSource = field(default_factory=InterferenceSource)

    def __post_init__(self) -> None:
        self.n_stations = ensure_int("n_stations", self.n_stations, minimum=1)
        self.cw_min = ensure_int("cw_min", self.cw_min, minimum=2)
        self.max_backoff_stage = ensure_int("max_backoff_stage", self.max_backoff_stage, minimum=0)
        self.retry_limit = ensure_int("retry_limit", self.retry_limit, minimum=1)
        ensure_positive("slot_time_us", self.slot_time_us)
        ensure_positive("phy_rate_mbps", self.phy_rate_mbps)
        ensure_int("payload_bits", self.payload_bits, minimum=1)

    # ------------------------------------------------------------- timings
    def contention_window(self, stage: int) -> int:
        """Contention window ``W_k`` at back-off stage ``k`` (doubling, capped)."""
        stage = min(stage, self.max_backoff_stage)
        return self.cw_min * (2 ** stage)

    def transmission_time_us(self) -> float:
        """Time to transmit one frame successfully (T_s), in microseconds."""
        data_us = (self.payload_bits + self.header_bits) / self.phy_rate_mbps
        ack_us = self.ack_bits / self.phy_rate_mbps
        return data_us + self.sifs_us + ack_us + self.difs_us + 2 * self.propagation_us

    def collision_time_us(self) -> float:
        """Time wasted by a collided / corrupted transmission (T_col)."""
        data_us = (self.payload_bits + self.header_bits) / self.phy_rate_mbps
        return data_us + self.difs_us + self.propagation_us


@dataclass
class DcfSolution:
    """Solution of the DCF fixed point for a given parameter set.

    Attributes
    ----------
    tau:
        Per-slot transmission probability of one station.
    failure_probability:
        Conditional probability ``p`` that a transmission attempt fails
        (collision or interference corruption).
    interference_occupancy:
        Stationary probability that a slot is covered by interference.
    mean_slot_time_us:
        Expected duration of a virtual slot (idle, success, collision or
        interference), used as the back-off counting unit ``σ̃``.
    success_probability:
        Probability that a slot contains exactly one transmission that is not
        corrupted by interference.
    iterations:
        Number of fixed-point iterations used.
    """

    tau: float
    failure_probability: float
    interference_occupancy: float
    mean_slot_time_us: float
    success_probability: float
    iterations: int


class DcfModel:
    """Fixed-point solver for the interference-extended Bianchi model."""

    def __init__(self, params: DcfParameters) -> None:
        self.params = params

    # ------------------------------------------------------------ solving
    def _tau_from_p(self, p: float) -> float:
        """Bianchi's expression for τ given the failure probability ``p``.

        The closed form has a removable singularity at ``p = 1/2``; near it we
        use the analytic limit ``2 / (W_0 + 1 + p W_0 m)`` so the fixed-point
        residual stays continuous and the bisection solver is well behaved.
        """
        w0 = self.params.cw_min
        m = self.params.max_backoff_stage
        if p >= 1.0:
            return 2.0 / (w0 * (2 ** m) + 1.0)
        if abs(1.0 - 2.0 * p) < 1e-9:
            return 2.0 / (w0 + 1.0 + p * w0 * m)
        numerator = 2.0 * (1.0 - 2.0 * p)
        denominator = (1.0 - 2.0 * p) * (w0 + 1.0) + p * w0 * (1.0 - (2.0 * p) ** m)
        if denominator == 0.0:
            return 2.0 / (w0 + 1.0 + p * w0 * m)
        tau = numerator / denominator
        if tau <= 0.0 or tau > 1.0:
            return 2.0 / (w0 * (2 ** m) + 1.0)
        return tau

    def _p_from_tau(self, tau: float) -> float:
        """Failure probability given τ: collision or interference corruption."""
        n = self.params.n_stations
        q_if = self.params.interference.occupancy
        collision_free = (1.0 - tau) ** (n - 1)
        return 1.0 - collision_free * (1.0 - q_if)

    def solve(self, tol: float = 1e-12, max_iterations: int = 200) -> DcfSolution:
        """Solve the two-equation fixed point by bisection on ``p``.

        The residual ``g(p) = p_from_tau(tau_from_p(p)) - p`` is positive at
        ``p = 0`` and negative at ``p = 1`` for every admissible parameter
        set, so bisection always converges; non-convergence (which would
        indicate corrupted parameters) raises
        :class:`repro.errors.ChannelError`.
        """

        def residual(p_value: float) -> float:
            return self._p_from_tau(self._tau_from_p(p_value)) - p_value

        low, high = 0.0, 1.0
        if residual(low) < 0.0:
            low_solution = True  # degenerate: already consistent at p ~ 0
            p = 0.0
        else:
            low_solution = False
            p = 0.5
        iterations = 0
        if not low_solution:
            for iterations in range(1, max_iterations + 1):
                p = 0.5 * (low + high)
                value = residual(p)
                if abs(value) < tol or (high - low) < tol:
                    break
                if value > 0.0:
                    low = p
                else:
                    high = p
            else:
                raise ChannelError("DCF fixed point did not converge")
        tau = self._tau_from_p(p)

        tau = float(np.clip(tau, 1e-12, 1.0))
        p = float(np.clip(p, 0.0, 1.0))
        return DcfSolution(
            tau=tau,
            failure_probability=p,
            interference_occupancy=self.params.interference.occupancy,
            mean_slot_time_us=self._mean_slot_time(tau),
            success_probability=self._success_probability(tau),
            iterations=iterations,
        )

    # ------------------------------------------------------- slot analysis
    def _success_probability(self, tau: float) -> float:
        """Probability a slot holds exactly one uncorrupted transmission."""
        n = self.params.n_stations
        q_if = self.params.interference.occupancy
        p_tr = 1.0 - (1.0 - tau) ** n
        if p_tr == 0.0:
            return 0.0
        p_single = n * tau * (1.0 - tau) ** (n - 1)
        return p_single * (1.0 - q_if)

    def _mean_slot_time(self, tau: float) -> float:
        """Expected virtual-slot duration σ̃ in microseconds.

        Decomposes a slot into idle, successful, collided and
        interference-covered outcomes, in the spirit of Bianchi's throughput
        analysis extended with the interference source of [7].
        """
        params = self.params
        n = params.n_stations
        q_if = params.interference.occupancy
        p_tr = 1.0 - (1.0 - tau) ** n
        p_single = n * tau * (1.0 - tau) ** (n - 1)
        p_success = p_single * (1.0 - q_if)
        p_interfered = q_if
        p_idle = (1.0 - p_tr) * (1.0 - q_if)
        p_collision = max(0.0, 1.0 - p_idle - p_success - p_interfered)

        t_slot = params.slot_time_us
        t_success = params.transmission_time_us()
        t_collision = params.collision_time_us()
        t_interference = max(t_collision, params.interference.duration_slots * t_slot)

        return float(
            p_idle * t_slot
            + p_success * t_success
            + p_collision * t_collision
            + p_interfered * t_interference
        )


# ------------------------------------------------------------- classification
def saturation_score(
    params: DcfParameters | int,
    offered_load: float | None = None,
) -> float:
    """Closed-form saturation score of one DCF cell, in ``[0, 1]``.

    The score is the probability that an arbitrary transmission attempt in
    the cell is *not* cleanly absorbed: the Bianchi fixed point's conditional
    failure probability ``p`` (collision or interference corruption, see
    :class:`DcfModel`), optionally composed with the cell's offered air-time
    load.  With both loss mechanisms treated as independent,

    .. math::

        \\text{score} = 1 - (1 - p)\\,(1 - \\min(1, \\rho))

    where ``rho`` is ``offered_load`` — air-time demand over air-time budget
    (e.g. ``m * service_ms / period_ms`` for ``m`` stations each occupying
    the medium for ``service_ms`` per ``period_ms`` command slot).  Omitting
    ``offered_load`` returns the bare fixed-point ``p``.

    The fleet layer's hybrid tier uses this as its hot/cold AP classifier
    (see :mod:`repro.fleet.hybrid`): an AP whose score reaches the spec's
    ``hot_threshold`` is simulated exactly, the rest are serviced by the
    analytic superposition model.  ``params`` may be a full
    :class:`DcfParameters` or just a station count.

    Properties (pinned by the unit tests): the score is monotone in the
    station count and in the offered load, equals ``p`` at zero load,
    saturates at 1.0 once the cell is air-time oversubscribed, and never
    leaves ``[0, 1]``.
    """
    if isinstance(params, DcfParameters):
        dcf = params
    else:
        dcf = DcfParameters(n_stations=ensure_int("n_stations", params, minimum=1))
    p = DcfModel(dcf).solve().failure_probability
    if offered_load is None:
        return float(p)
    try:
        rho = float(offered_load)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError("offered_load must be a number") from exc
    if not math.isfinite(rho) or rho < 0.0:
        raise ConfigurationError("offered_load must be finite and >= 0")
    return float(1.0 - (1.0 - p) * (1.0 - min(1.0, rho)))
