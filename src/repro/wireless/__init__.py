"""IEEE 802.11 wireless substrate with electromagnetic interference.

This package reproduces the modelling chain the paper relies on (§V):

* :mod:`repro.wireless.bianchi` — Bianchi's DCF fixed point extended with a
  non-802.11 interference source (active with probability ``p_if`` for
  ``T_if`` slots), following Bosch et al. [7].
* :mod:`repro.wireless.delay_model` — the retransmission distribution ``a_j``,
  the per-retransmission mean delays ``E_j[Δ_W]`` and the hyper-exponential
  service distribution used by the G/HEXP/1/Q access-point queue, plus the
  theoretical results from the paper's Appendix (bounded-on-average delay,
  divergence, causality violation).
* :mod:`repro.wireless.channel` — per-command wireless delay/loss sampler
  (queue simulation or direct sampling) used by the simulation experiments.
* :mod:`repro.wireless.jammer` — a Gilbert–Elliott style bursty jammer used
  for the experimental-evaluation reproduction (Fig. 10).
* :mod:`repro.wireless.lossgen` — deterministic consecutive-loss injector for
  the controlled experiments (Fig. 9).
* :mod:`repro.wireless.markov` — time-varying channel models beyond the
  paper's single-cause scenarios: ``K``-state Markov-modulated delay/loss
  regimes (superposable heterogeneous interference) and a periodic AP
  handover profile.
* :mod:`repro.wireless.superposition` — the analytic Gaussian/heavy-tail
  superposition limit for the aggregate air-time demand of lightly loaded
  APs, used (with :func:`repro.wireless.bianchi.saturation_score` as the
  hot/cold classifier) by the fleet layer's hybrid simulation tier.

Every stochastic sampler ships a serial reference path plus a ``(B, n)``
batched path that is bit-identical to per-seed serial sampling (the
channel-layer randomness contract used by the scenario engine).
"""

from .bianchi import DcfModel, DcfParameters, DcfSolution, InterferenceSource, saturation_score
from .channel import ChannelSample, CommandDelayTrace, WirelessChannel, trace_from_delays
from .delay_model import (
    Ieee80211DelayModel,
    RetransmissionDistribution,
    causality_violation_probability,
    expected_delay_bound,
)
from .jammer import GilbertElliottJammer, JammerConfig, sample_jammer_delays_batch
from .lossgen import ConsecutiveLossInjector, LossPattern, PeriodicLossInjector, RandomLossInjector
from .markov import (
    HandoverChannel,
    HandoverConfig,
    MarkovChannelConfig,
    MarkovModulatedChannel,
    sample_handover_delays_batch,
    sample_markov_delays_batch,
)
from .superposition import TAIL_KIND_SUMMARIES, TAIL_KINDS, SuperpositionModel

__all__ = [
    "DcfModel",
    "DcfParameters",
    "DcfSolution",
    "InterferenceSource",
    "saturation_score",
    "SuperpositionModel",
    "TAIL_KIND_SUMMARIES",
    "TAIL_KINDS",
    "ChannelSample",
    "CommandDelayTrace",
    "WirelessChannel",
    "trace_from_delays",
    "Ieee80211DelayModel",
    "RetransmissionDistribution",
    "causality_violation_probability",
    "expected_delay_bound",
    "GilbertElliottJammer",
    "JammerConfig",
    "sample_jammer_delays_batch",
    "ConsecutiveLossInjector",
    "LossPattern",
    "PeriodicLossInjector",
    "RandomLossInjector",
    "HandoverChannel",
    "HandoverConfig",
    "MarkovChannelConfig",
    "MarkovModulatedChannel",
    "sample_handover_delays_batch",
    "sample_markov_delays_batch",
]
