"""Analytic Gaussian/heavy-tail superposition model for cold access points.

At large time scales the superposition of many independent, lightly loaded
traffic sources converges to a Gaussian process — and, when the individual
sources are heavy-tailed, to a heavy-tailed limit (see PAPERS.md, "On the
superposition of heterogeneous traffic at large time scales").  The fleet
layer's hybrid tier (:mod:`repro.fleet.hybrid`) leans on exactly this limit:
for a *cold* AP — one whose Bianchi saturation score stays below the spec's
``hot_threshold`` — the per-slot air-time demand is a thin superposition of
``m`` on/off sources, and the exact per-command Lindley backlog can be
replaced by closed-form delay statistics without changing the service-level
picture.

The model
---------

Each of the ``m`` co-scheduled sessions on the AP independently delivers a
command in a given slot with probability ``q`` (its channel's delivery
probability) and then occupies the AP for ``service_ms`` of air time.  The
per-slot aggregate work is therefore ``service_ms * Binomial(m, q)``:

* mean work ``m q s`` and standard deviation ``s * sqrt(m q (1 - q))`` —
  the Gaussian limit of the superposition;
* the stationary mean backlog of the slotted Lindley recursion under the
  diffusion (heavy-traffic) approximation,
  ``E[B] = Var[work] / (2 (period - E[work]))``, finite only while the AP
  is stable (``E[work] < period``);
* the expected in-slot service rank wait ``q (m - 1) s / 2`` (a delivered
  command queues behind every co-delivered peer with lower rank, each
  equally likely to precede it).

:meth:`SuperpositionModel.sample_extra_delays` draws per-session *extra*
queueing delays around :meth:`SuperpositionModel.mean_extra_delay_ms` —
Gaussian for the classic limit, Pareto-shaped for the heavy-tailed one —
through a caller-supplied generator in one fixed-size block, preserving the
spec-derived block-ordered RNG discipline the engines rely on for
determinism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

#: Tail families understood by the superposition model.
TAIL_KINDS: tuple[str, ...] = ("gaussian", "heavy")

#: One-line summary per tail kind (rendered into the docs reference).
TAIL_KIND_SUMMARIES: dict[str, str] = {
    "gaussian": "Gaussian superposition limit (light-tailed extra delay)",
    "heavy": "Pareto-shaped heavy-tail limit (same mean, fat upper tail)",
}


@dataclass(frozen=True)
class SuperpositionModel:
    """Aggregate air-time demand of one lightly loaded (cold) AP.

    Attributes
    ----------
    sessions:
        Number ``m`` of co-scheduled sessions contending for the AP.
    delivery_probability:
        Per-slot probability ``q`` that one session's command survives its
        own channel and reaches the AP.
    service_ms:
        Air time one delivered command occupies the AP for, in ms.
    period_ms:
        Air-time budget per command slot (the template's command period).
    tail:
        ``"gaussian"`` or ``"heavy"`` (see :data:`TAIL_KINDS`).
    tail_index:
        Pareto shape ``alpha > 1`` of the heavy tail; larger is thinner
        (ignored by the Gaussian tail).
    """

    sessions: int
    delivery_probability: float
    service_ms: float
    period_ms: float
    tail: str = "gaussian"
    tail_index: float = 3.0

    def __post_init__(self) -> None:
        try:
            sessions = int(self.sessions)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError("sessions must be an integer") from exc
        if sessions < 1:
            raise ConfigurationError("a superposition needs at least one session")
        q = float(self.delivery_probability)
        if not 0.0 <= q <= 1.0 or not math.isfinite(q):
            raise ConfigurationError("delivery_probability must be in [0, 1]")
        if not float(self.service_ms) > 0.0:
            raise ConfigurationError("service_ms must be > 0")
        if not float(self.period_ms) > 0.0:
            raise ConfigurationError("period_ms must be > 0")
        if self.tail not in TAIL_KINDS:
            raise ConfigurationError(
                f"unknown tail kind {self.tail!r}; available: {sorted(TAIL_KINDS)}"
            )
        if not float(self.tail_index) > 1.0:
            raise ConfigurationError("tail_index must be > 1 (finite-mean Pareto)")

    # ------------------------------------------------------------- moments
    @property
    def mean_work_ms(self) -> float:
        """Expected per-slot aggregate work ``m q s`` in ms."""
        return self.sessions * self.delivery_probability * self.service_ms

    @property
    def work_std_ms(self) -> float:
        """Per-slot work standard deviation ``s sqrt(m q (1-q))`` in ms."""
        q = self.delivery_probability
        return self.service_ms * math.sqrt(self.sessions * q * (1.0 - q))

    @property
    def utilization(self) -> float:
        """Mean air-time utilisation of the AP, capped at 1."""
        return min(1.0, self.mean_work_ms / self.period_ms)

    @property
    def is_stable(self) -> bool:
        """True while the mean demand stays below the per-slot budget."""
        return self.mean_work_ms < self.period_ms

    def mean_backlog_ms(self) -> float:
        """Stationary mean backlog under the heavy-traffic diffusion limit.

        ``Var[work] / (2 (period - E[work]))`` for a stable AP, ``inf``
        otherwise — an unstable AP's backlog grows without bound, which is
        precisely why such APs must be simulated exactly (classified hot).
        """
        if not self.is_stable:
            return float("inf")
        variance = self.work_std_ms**2
        if variance == 0.0:
            return 0.0
        return variance / (2.0 * (self.period_ms - self.mean_work_ms))

    def mean_rank_wait_ms(self) -> float:
        """Expected in-slot wait behind co-delivered peers, in ms."""
        return 0.5 * self.delivery_probability * (self.sessions - 1) * self.service_ms

    def mean_extra_delay_ms(self) -> float:
        """Expected extra queueing delay per delivered command, in ms."""
        return self.mean_backlog_ms() + self.mean_rank_wait_ms()

    # ------------------------------------------------------------- sampling
    def sample_extra_delays(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Per-session mean extra delays (ms) for ``count`` sessions.

        Exactly one fixed-size block of draws is consumed from ``rng`` per
        call (``count`` normals or ``count`` Pareto variates), so callers
        iterating APs in a spec-derived order get bit-identical results
        regardless of worker count or scheduling.  Both tails have mean
        :meth:`mean_extra_delay_ms`; the heavy tail redistributes mass into
        a Pareto upper tail.  Draws are clipped at zero (backlog and rank
        waits are nonnegative).
        """
        count = int(count)
        if count < 0:
            raise ConfigurationError("count must be >= 0")
        mean = self.mean_extra_delay_ms()
        if count == 0:
            return np.zeros(0)
        if not math.isfinite(mean):
            return np.full(count, np.inf)
        if self.tail == "heavy":
            alpha = float(self.tail_index)
            # numpy's pareto samples X-1 for Lomax X with E = 1/(alpha-1);
            # rescale so the draw has mean `mean` exactly.
            draws = rng.pareto(alpha, size=count) * (alpha - 1.0) * mean
            return np.maximum(draws, 0.0)
        # Gaussian limit: the per-session average over the superposed slots
        # concentrates; spread the per-slot work deviation across sessions.
        spread = self.work_std_ms / math.sqrt(self.sessions)
        draws = mean + spread * rng.standard_normal(count)
        return np.maximum(draws, 0.0)
