"""Time-varying channel models: Markov-modulated interference and AP handover.

The paper's evaluation drives every scenario with a *single* interference
cause (one AP queue, one jammer, one controlled loss pattern).  Real
deployments superpose heterogeneous traffic whose burstiness survives
aggregation — the regime studied by López-Oliveros & Resnick ("On the
superposition of heterogeneous traffic at large time scales") — and roam
between access points.  This module adds the two missing workload classes:

* :class:`MarkovModulatedChannel` — a ``K``-state Markov chain over channel
  *regimes* (e.g. idle / contended / swamped), each with its own mean delay
  and loss probability.  It generalises the two-state Gilbert–Elliott jammer
  and, composed through a ``"compound"`` channel spec, expresses superposed
  heterogeneous interference sources directly.
* :class:`HandoverChannel` — periodic delay spikes and loss gaps modelling an
  802.11 station roaming between access points: every ``period`` commands the
  link drops for ``outage`` commands (reassociation) and then carries an
  exponentially decaying delay spike while buffers drain.

Both samplers follow the channel-layer randomness contract: the serial path
draws its variates in fixed block order and acts as the bit-equality oracle
for the ``(B, n)`` batched path, which advances all repetitions in lockstep
NumPy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import ensure_int, ensure_positive, ensure_probability, rng_from
from ..errors import ChannelError, ConfigurationError
from .channel import CommandDelayTrace, trace_from_delays


@dataclass
class MarkovChannelConfig:
    """``K``-state Markov-modulated delay/loss regimes.

    Attributes
    ----------
    transition:
        Row-stochastic ``K × K`` matrix of per-command regime transition
        probabilities (rows must sum to one).
    delay_means_ms:
        Mean command delay (exponentially distributed) in each regime.
    loss_probabilities:
        Command-loss probability in each regime.
    start_state:
        Regime the chain starts in (default: the first, conventionally the
        mildest).

    The defaults model three regimes of a shared 2.4 GHz band: *idle*
    (nominal delay, negligible loss), *contended* (neighbouring traffic
    bursts) and *swamped* (a wideband interferer parks on the channel).
    """

    transition: tuple[tuple[float, ...], ...] = (
        (0.96, 0.035, 0.005),
        (0.10, 0.85, 0.05),
        (0.05, 0.10, 0.85),
    )
    delay_means_ms: tuple[float, ...] = (2.0, 12.0, 45.0)
    loss_probabilities: tuple[float, ...] = (0.002, 0.05, 0.60)
    start_state: int = 0

    def __post_init__(self) -> None:
        rows = tuple(tuple(float(p) for p in row) for row in self.transition)
        self.transition = rows
        k = len(rows)
        if k == 0:
            raise ConfigurationError("transition matrix needs at least one state")
        for row in rows:
            if len(row) != k:
                raise ConfigurationError("transition matrix must be square")
            for p in row:
                ensure_probability("transition probability", p)
            if not np.isclose(sum(row), 1.0, atol=1e-6):
                raise ConfigurationError(
                    f"transition rows must sum to 1, got {sum(row)!r}"
                )
        self.delay_means_ms = tuple(float(d) for d in self.delay_means_ms)
        self.loss_probabilities = tuple(float(p) for p in self.loss_probabilities)
        if len(self.delay_means_ms) != k or len(self.loss_probabilities) != k:
            raise ConfigurationError(
                "delay_means_ms and loss_probabilities must have one entry per state"
            )
        for delay in self.delay_means_ms:
            ensure_positive("delay_means_ms", delay)
        for p in self.loss_probabilities:
            ensure_probability("loss_probabilities", p)
        self.start_state = ensure_int("start_state", self.start_state, minimum=0)
        if self.start_state >= k:
            raise ConfigurationError(
                f"start_state must be < {k}, got {self.start_state}"
            )

    @property
    def n_states(self) -> int:
        """Number of channel regimes ``K``."""
        return len(self.transition)

    def cumulative_transition(self) -> np.ndarray:
        """Per-row cumulative transition probabilities (last column forced to 1).

        Shared by the serial and batched samplers so both map a transition
        uniform to the identical next state.
        """
        cumulative = np.cumsum(np.asarray(self.transition, dtype=float), axis=1)
        cumulative[:, -1] = 1.0
        return cumulative

    def stationary_distribution(self) -> np.ndarray:
        """Stationary regime occupancy ``π`` with ``π P = π``."""
        matrix = np.asarray(self.transition, dtype=float)
        k = matrix.shape[0]
        system = np.vstack([matrix.T - np.eye(k), np.ones((1, k))])
        target = np.concatenate([np.zeros(k), [1.0]])
        solution, *_ = np.linalg.lstsq(system, target, rcond=None)
        return np.clip(solution, 0.0, None) / np.clip(solution, 0.0, None).sum()

    def mean_loss_rate(self) -> float:
        """Long-run command-loss rate under the stationary regime mix."""
        return float(np.dot(self.stationary_distribution(), self.loss_probabilities))


class MarkovModulatedChannel:
    """Channel whose delay/loss regime follows a ``K``-state Markov chain.

    The object is stateful like the jammer: successive :meth:`sample_delays`
    calls continue the regime chain from where the previous call stopped.
    """

    def __init__(
        self,
        config: MarkovChannelConfig | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.config = config if config is not None else MarkovChannelConfig()
        self.rng = rng_from(seed)
        self.state = self.config.start_state
        self._cumulative = self.config.cumulative_transition()

    def reset(self) -> None:
        """Return the chain to its configured start regime."""
        self.state = self.config.start_state

    def _scan_states(self, step_uniforms: np.ndarray) -> np.ndarray:
        """Advance the regime chain through pre-drawn transition uniforms."""
        cumulative = self._cumulative
        states = np.empty(step_uniforms.size, dtype=np.intp)
        state = self.state
        for index, uniform in enumerate(step_uniforms):
            state = int(np.argmax(uniform < cumulative[state]))
            states[index] = state
        return states

    def sample_delays(self, n_commands: int) -> np.ndarray:
        """Per-command delays (ms, ``inf`` = lost), block-ordered randomness.

        Serial reference path — the bit-equality oracle for
        :func:`sample_markov_delays_batch`.
        """
        if n_commands <= 0:
            raise ChannelError("n_commands must be positive")
        n_commands = int(n_commands)
        config = self.config
        states = self._scan_states(self.rng.random(n_commands))
        self.state = int(states[-1])
        loss_probability = np.asarray(config.loss_probabilities)[states]
        mean_delay = np.asarray(config.delay_means_ms)[states]
        lost = self.rng.random(n_commands) < loss_probability
        delays = self.rng.exponential(mean_delay)
        return np.where(lost, np.inf, delays)

    def sample_trace(self, n_commands: int) -> CommandDelayTrace:
        """Sample ``n_commands`` consecutive commands as a delay trace."""
        return trace_from_delays(self.sample_delays(n_commands))


def sample_markov_delays_batch(
    config: MarkovChannelConfig | None, n_commands: int, seeds
) -> np.ndarray:
    """``(B, n)`` Markov-modulated delays, one independent chain per seed.

    Row ``b`` is bit-identical to
    ``MarkovModulatedChannel(config, seed=seeds[b]).sample_delays(n)``: each
    row consumes its own RNG stream in the same block order while the regime
    chains advance in lockstep ``(B,)`` vector steps.
    """
    if n_commands <= 0:
        raise ChannelError("n_commands must be positive")
    n_commands = int(n_commands)
    config = config if config is not None else MarkovChannelConfig()
    seeds = list(seeds)
    if not seeds:
        raise ChannelError("sample_markov_delays_batch needs at least one seed")
    rngs = [rng_from(seed) for seed in seeds]
    batch = len(rngs)
    cumulative = config.cumulative_transition()
    step_uniforms = np.stack([rng.random(n_commands) for rng in rngs])

    states = np.empty((batch, n_commands), dtype=np.intp)
    state = np.full(batch, config.start_state, dtype=np.intp)
    for index in range(n_commands):
        state = np.argmax(step_uniforms[:, index, None] < cumulative[state], axis=1)
        states[:, index] = state

    loss_probability = np.asarray(config.loss_probabilities)[states]
    mean_delay = np.asarray(config.delay_means_ms)[states]
    delays = np.empty((batch, n_commands))
    for row, rng in enumerate(rngs):
        lost = rng.random(n_commands) < loss_probability[row]
        variates = rng.exponential(mean_delay[row])
        delays[row] = np.where(lost, np.inf, variates)
    return delays


@dataclass
class HandoverConfig:
    """Periodic AP-roaming profile: loss gaps plus decaying delay spikes.

    Attributes
    ----------
    period:
        Commands between consecutive handovers (250 ≈ one roam every 5 s at
        the paper's 50 Hz command rate).
    outage:
        Commands lost during each reassociation gap.
    spike_delay_ms:
        Extra delay of the first command after reattachment (buffered
        commands drain through the new AP).
    spike_decay_commands:
        Exponential decay constant of the spike, in commands.
    nominal_delay_ms:
        Steady-state delay between handovers.
    """

    period: int = 250
    outage: int = 15
    spike_delay_ms: float = 30.0
    spike_decay_commands: float = 10.0
    nominal_delay_ms: float = 2.0

    def __post_init__(self) -> None:
        self.period = ensure_int("period", self.period, minimum=2)
        self.outage = ensure_int("outage", self.outage, minimum=1)
        if self.outage >= self.period:
            raise ConfigurationError("outage must be smaller than period")
        ensure_positive("spike_delay_ms", self.spike_delay_ms)
        ensure_positive("spike_decay_commands", self.spike_decay_commands)
        ensure_positive("nominal_delay_ms", self.nominal_delay_ms)


def _handover_delays_for_offsets(
    config: HandoverConfig, n_commands: int, offsets: np.ndarray
) -> np.ndarray:
    """``(B, n)`` handover delays for per-repetition phase ``offsets``.

    Pure elementwise formula shared by the serial and batched paths, so both
    produce identical floats for the same offset.
    """
    phase = (np.arange(n_commands)[None, :] + offsets[:, None]) % config.period
    since_attach = phase - config.outage
    spike = config.spike_delay_ms * np.exp(-since_attach / config.spike_decay_commands)
    delays = config.nominal_delay_ms + spike
    return np.where(phase < config.outage, np.inf, delays)


class HandoverChannel:
    """Deterministic roaming profile with a seed-derived phase offset.

    Each realisation shifts the handover schedule by a uniformly drawn phase
    (one RNG draw), so repetitions see the outages at different points of the
    run while the profile itself stays exactly reproducible.
    """

    def __init__(
        self,
        config: HandoverConfig | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.config = config if config is not None else HandoverConfig()
        self.rng = rng_from(seed)

    def sample_delays(self, n_commands: int) -> np.ndarray:
        """Per-command delays (ms, ``inf`` = lost) for one realisation."""
        if n_commands <= 0:
            raise ChannelError("n_commands must be positive")
        offset = int(self.rng.integers(self.config.period))
        offsets = np.array([offset])
        return _handover_delays_for_offsets(self.config, int(n_commands), offsets)[0]

    def sample_trace(self, n_commands: int) -> CommandDelayTrace:
        """Sample ``n_commands`` consecutive commands as a delay trace."""
        return trace_from_delays(self.sample_delays(n_commands))


def sample_handover_delays_batch(
    config: HandoverConfig | None, n_commands: int, seeds
) -> np.ndarray:
    """``(B, n)`` handover delays, one phase offset per seed.

    Row ``b`` is bit-identical to
    ``HandoverChannel(config, seed=seeds[b]).sample_delays(n)``.
    """
    if n_commands <= 0:
        raise ChannelError("n_commands must be positive")
    config = config if config is not None else HandoverConfig()
    seeds = list(seeds)
    if not seeds:
        raise ChannelError("sample_handover_delays_batch needs at least one seed")
    offsets = np.array(
        [int(rng_from(seed).integers(config.period)) for seed in seeds]
    )
    return _handover_delays_for_offsets(config, int(n_commands), offsets)
