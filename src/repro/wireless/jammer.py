"""Bursty jammer model for the experimental-evaluation reproduction.

The paper's second experimental scenario (§VI-D2, Fig. 10) uses a 2.4 GHz
Silvercrest wireless transmitter as a jammer: while it emits, commands on the
802.11 channel are delayed unpredictably or lost in bursts; when it goes
quiet, the channel recovers and the robot's PID controller needs a few
hundred milliseconds to settle back onto the defined trajectory.

We reproduce that behaviour with a Gilbert–Elliott style two-state Markov
model: the channel alternates between a *good* state (commands experience only
the nominal 802.11 delay and a small residual loss rate) and a *jammed* state
(commands are lost with high probability and surviving ones are heavily
delayed).  State holding times are geometric, giving exactly the correlated
loss bursts observed with a real jammer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import ensure_positive, ensure_probability, rng_from
from ..errors import ChannelError
from .channel import ChannelSample, CommandDelayTrace


@dataclass
class JammerConfig:
    """Configuration of the Gilbert–Elliott jammer.

    Attributes
    ----------
    p_good_to_jammed:
        Per-command probability of the channel entering the jammed state.
    p_jammed_to_good:
        Per-command probability of the jammer going quiet again.
    loss_probability_good:
        Residual command-loss probability while the channel is good.
    loss_probability_jammed:
        Command-loss probability while the jammer is active.
    delay_good_ms / delay_jammed_ms:
        Mean command delay (exponentially distributed) in each state.
    """

    p_good_to_jammed: float = 0.04
    p_jammed_to_good: float = 0.08
    loss_probability_good: float = 0.01
    loss_probability_jammed: float = 0.85
    delay_good_ms: float = 2.0
    delay_jammed_ms: float = 40.0

    def __post_init__(self) -> None:
        ensure_probability("p_good_to_jammed", self.p_good_to_jammed)
        ensure_probability("p_jammed_to_good", self.p_jammed_to_good)
        ensure_probability("loss_probability_good", self.loss_probability_good)
        ensure_probability("loss_probability_jammed", self.loss_probability_jammed)
        ensure_positive("delay_good_ms", self.delay_good_ms)
        ensure_positive("delay_jammed_ms", self.delay_jammed_ms)

    def stationary_jammed_fraction(self) -> float:
        """Long-run fraction of commands sent while the jammer is active."""
        total = self.p_good_to_jammed + self.p_jammed_to_good
        if total == 0:
            return 0.0
        return self.p_good_to_jammed / total

    def mean_burst_length(self) -> float:
        """Expected number of consecutive commands affected by one jam burst."""
        if self.p_jammed_to_good == 0:
            raise ChannelError("p_jammed_to_good = 0 gives infinite burst length")
        return 1.0 / self.p_jammed_to_good


class GilbertElliottJammer:
    """Two-state bursty loss/delay channel driven by a jammer.

    The object is stateful: successive calls to :meth:`sample_trace` continue
    the Markov chain, so several experiment repetitions can share one jammer
    realisation when desired.  Call :meth:`reset` to return to the good state.
    """

    GOOD = 0
    JAMMED = 1

    def __init__(self, config: JammerConfig | None = None, seed: int | np.random.Generator | None = None) -> None:
        self.config = config if config is not None else JammerConfig()
        self.rng = rng_from(seed)
        self.state = self.GOOD

    def reset(self) -> None:
        """Force the channel back into the good state."""
        self.state = self.GOOD

    def _step_state(self) -> None:
        if self.state == self.GOOD:
            if self.rng.random() < self.config.p_good_to_jammed:
                self.state = self.JAMMED
        else:
            if self.rng.random() < self.config.p_jammed_to_good:
                self.state = self.GOOD

    def sample_command(self, index: int = 0) -> ChannelSample:
        """Sample the fate of one command under the current jammer state."""
        self._step_state()
        config = self.config
        if self.state == self.JAMMED:
            loss_probability = config.loss_probability_jammed
            mean_delay = config.delay_jammed_ms
        else:
            loss_probability = config.loss_probability_good
            mean_delay = config.delay_good_ms
        if self.rng.random() < loss_probability:
            return ChannelSample(index=index, delay_ms=float("inf"), lost=True)
        delay = float(self.rng.exponential(mean_delay))
        return ChannelSample(index=index, delay_ms=delay, lost=False)

    def sample_trace(self, n_commands: int) -> CommandDelayTrace:
        """Sample the fate of ``n_commands`` consecutive commands."""
        if n_commands <= 0:
            raise ChannelError("n_commands must be positive")
        trace = CommandDelayTrace()
        for index in range(int(n_commands)):
            trace.samples.append(self.sample_command(index))
        return trace

    def jammed_mask(self, n_commands: int) -> np.ndarray:
        """Simulate the state chain only, returning a boolean jammed mask.

        Useful for experiments that need to know *when* the jammer was active
        (e.g. to annotate the Fig. 10 reproduction) without drawing delays.
        """
        mask = np.zeros(int(n_commands), dtype=bool)
        for index in range(int(n_commands)):
            self._step_state()
            mask[index] = self.state == self.JAMMED
        return mask
