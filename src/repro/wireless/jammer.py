"""Bursty jammer model for the experimental-evaluation reproduction.

The paper's second experimental scenario (§VI-D2, Fig. 10) uses a 2.4 GHz
Silvercrest wireless transmitter as a jammer: while it emits, commands on the
802.11 channel are delayed unpredictably or lost in bursts; when it goes
quiet, the channel recovers and the robot's PID controller needs a few
hundred milliseconds to settle back onto the defined trajectory.

We reproduce that behaviour with a Gilbert–Elliott style two-state Markov
model: the channel alternates between a *good* state (commands experience only
the nominal 802.11 delay and a small residual loss rate) and a *jammed* state
(commands are lost with high probability and surviving ones are heavily
delayed).  State holding times are geometric, giving exactly the correlated
loss bursts observed with a real jammer.

:meth:`GilbertElliottJammer.sample_trace` draws its randomness in fixed block
order (state-transition uniforms, then loss uniforms, then delay variates),
which makes it the bit-equality oracle for
:func:`sample_jammer_delays_batch` — the vectorized path that advances ``B``
independent jammer realisations in lockstep ``(B, n)`` arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import ensure_positive, ensure_probability, rng_from
from ..errors import ChannelError
from .channel import ChannelSample, CommandDelayTrace, trace_from_delays


@dataclass
class JammerConfig:
    """Configuration of the Gilbert–Elliott jammer.

    Attributes
    ----------
    p_good_to_jammed:
        Per-command probability of the channel entering the jammed state.
    p_jammed_to_good:
        Per-command probability of the jammer going quiet again.
    loss_probability_good:
        Residual command-loss probability while the channel is good.
    loss_probability_jammed:
        Command-loss probability while the jammer is active.
    delay_good_ms / delay_jammed_ms:
        Mean command delay (exponentially distributed) in each state.
    """

    p_good_to_jammed: float = 0.04
    p_jammed_to_good: float = 0.08
    loss_probability_good: float = 0.01
    loss_probability_jammed: float = 0.85
    delay_good_ms: float = 2.0
    delay_jammed_ms: float = 40.0

    def __post_init__(self) -> None:
        ensure_probability("p_good_to_jammed", self.p_good_to_jammed)
        ensure_probability("p_jammed_to_good", self.p_jammed_to_good)
        ensure_probability("loss_probability_good", self.loss_probability_good)
        ensure_probability("loss_probability_jammed", self.loss_probability_jammed)
        ensure_positive("delay_good_ms", self.delay_good_ms)
        ensure_positive("delay_jammed_ms", self.delay_jammed_ms)

    def stationary_jammed_fraction(self) -> float:
        """Long-run fraction of commands sent while the jammer is active."""
        total = self.p_good_to_jammed + self.p_jammed_to_good
        if total == 0:
            return 0.0
        return self.p_good_to_jammed / total

    def mean_burst_length(self) -> float:
        """Expected number of consecutive commands affected by one jam burst."""
        if self.p_jammed_to_good == 0:
            raise ChannelError("p_jammed_to_good = 0 gives infinite burst length")
        return 1.0 / self.p_jammed_to_good


class GilbertElliottJammer:
    """Two-state bursty loss/delay channel driven by a jammer.

    The object is stateful: successive calls to :meth:`sample_trace` continue
    the Markov chain, so several experiment repetitions can share one jammer
    realisation when desired.  Call :meth:`reset` to return to the good state.
    """

    GOOD = 0
    JAMMED = 1

    def __init__(
        self,
        config: JammerConfig | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.config = config if config is not None else JammerConfig()
        self.rng = rng_from(seed)
        self.state = self.GOOD

    def reset(self) -> None:
        """Force the channel back into the good state."""
        self.state = self.GOOD

    def _step_state(self) -> None:
        if self.state == self.GOOD:
            if self.rng.random() < self.config.p_good_to_jammed:
                self.state = self.JAMMED
        else:
            if self.rng.random() < self.config.p_jammed_to_good:
                self.state = self.GOOD

    def sample_command(self, index: int = 0) -> ChannelSample:
        """Sample the fate of one command under the current jammer state.

        One-off convenience path; it draws its variates per command (and the
        delay draw only for delivered commands), so a sequence of
        ``sample_command`` calls consumes the RNG stream differently from one
        :meth:`sample_trace` call of the same length.
        """
        self._step_state()
        config = self.config
        if self.state == self.JAMMED:
            loss_probability = config.loss_probability_jammed
            mean_delay = config.delay_jammed_ms
        else:
            loss_probability = config.loss_probability_good
            mean_delay = config.delay_good_ms
        if self.rng.random() < loss_probability:
            return ChannelSample(index=index, delay_ms=float("inf"), lost=True)
        delay = float(self.rng.exponential(mean_delay))
        return ChannelSample(index=index, delay_ms=delay, lost=False)

    def _scan_states(self, step_uniforms: np.ndarray) -> np.ndarray:
        """Advance the two-state chain through pre-drawn transition uniforms."""
        config = self.config
        states = np.empty(step_uniforms.size, dtype=np.int8)
        state = self.state
        for index, uniform in enumerate(step_uniforms):
            if state == self.GOOD:
                if uniform < config.p_good_to_jammed:
                    state = self.JAMMED
            elif uniform < config.p_jammed_to_good:
                state = self.GOOD
            states[index] = state
        return states

    def sample_delays(self, n_commands: int) -> np.ndarray:
        """Per-command delays (ms, ``inf`` = lost) for ``n_commands`` commands.

        Randomness is consumed in fixed block order — transition uniforms,
        loss uniforms, then one delay variate per command (drawn for lost
        commands too, so the stream shape never depends on outcomes).  This
        is the serial reference for :func:`sample_jammer_delays_batch`.
        """
        if n_commands <= 0:
            raise ChannelError("n_commands must be positive")
        n_commands = int(n_commands)
        config = self.config
        step_uniforms = self.rng.random(n_commands)
        states = self._scan_states(step_uniforms)
        self.state = int(states[-1])
        loss_probability = np.where(
            states == self.JAMMED, config.loss_probability_jammed, config.loss_probability_good
        )
        mean_delay = np.where(
            states == self.JAMMED, config.delay_jammed_ms, config.delay_good_ms
        )
        lost = self.rng.random(n_commands) < loss_probability
        delays = self.rng.exponential(mean_delay)
        return np.where(lost, np.inf, delays)

    def sample_trace(self, n_commands: int) -> CommandDelayTrace:
        """Sample the fate of ``n_commands`` consecutive commands."""
        return trace_from_delays(self.sample_delays(n_commands))

    def jammed_mask(self, n_commands: int) -> np.ndarray:
        """Simulate the state chain only, returning a boolean jammed mask.

        Useful for experiments that need to know *when* the jammer was active
        (e.g. to annotate the Fig. 10 reproduction) without drawing delays.
        """
        n_commands = int(n_commands)
        states = self._scan_states(self.rng.random(n_commands))
        self.state = int(states[-1])
        return states == self.JAMMED


def sample_jammer_delays_batch(
    config: JammerConfig | None, n_commands: int, seeds
) -> np.ndarray:
    """``(B, n)`` jammer delays for ``B`` independent realisations.

    Row ``b`` is bit-identical to
    ``GilbertElliottJammer(config, seed=seeds[b]).sample_delays(n_commands)``:
    each row consumes its own RNG stream in the same block order, while the
    two-state chains of all rows advance in lockstep ``(B,)`` vector steps.
    """
    if n_commands <= 0:
        raise ChannelError("n_commands must be positive")
    n_commands = int(n_commands)
    config = config if config is not None else JammerConfig()
    seeds = list(seeds)
    if not seeds:
        raise ChannelError("sample_jammer_delays_batch needs at least one seed")
    rngs = [rng_from(seed) for seed in seeds]
    batch = len(rngs)
    step_uniforms = np.stack([rng.random(n_commands) for rng in rngs])

    states = np.empty((batch, n_commands), dtype=np.int8)
    state = np.full(batch, GilbertElliottJammer.GOOD, dtype=np.int8)
    jammed = np.int8(GilbertElliottJammer.JAMMED)
    good = np.int8(GilbertElliottJammer.GOOD)
    for index in range(n_commands):
        uniform = step_uniforms[:, index]
        go_jammed = (state == good) & (uniform < config.p_good_to_jammed)
        go_good = (state == jammed) & (uniform < config.p_jammed_to_good)
        state = np.where(go_jammed, jammed, np.where(go_good, good, state))
        states[:, index] = state

    loss_probability = np.where(
        states == jammed, config.loss_probability_jammed, config.loss_probability_good
    )
    mean_delay = np.where(states == jammed, config.delay_jammed_ms, config.delay_good_ms)
    delays = np.empty((batch, n_commands))
    for row, rng in enumerate(rngs):
        lost = rng.random(n_commands) < loss_probability[row]
        variates = rng.exponential(mean_delay[row])
        delays[row] = np.where(lost, np.inf, variates)
    return delays
