"""Controlled loss injectors for the Fig. 9 experiments.

The paper's first experimental analysis (§VI-D1) does not use the jammer;
instead the remote controller *deliberately* drops bursts of 5, 10 or 25
consecutive control commands at random points of the 30-second run, so the
effect of FoReCo can be studied under controlled, repeatable conditions.

This module provides three injectors with a common interface
(:meth:`LossPattern.lost_mask` returns a boolean array marking which command
indices are lost):

* :class:`ConsecutiveLossInjector` — drops bursts of a fixed length at
  randomly chosen start indices (the paper's controlled experiment).
* :class:`PeriodicLossInjector` — drops a burst every ``period`` commands
  (deterministic variant used in tests and ablations).
* :class:`RandomLossInjector` — i.i.d. Bernoulli losses (a memoryless
  baseline for comparison in ablation benches).

Every injector also exposes :meth:`LossPattern.lost_mask_batch`, which stacks
``B`` independent realisations (one per seed) into a ``(B, n)`` mask without
touching the injector's own RNG — row ``b`` is bit-identical to what a fresh
injector seeded with ``seeds[b]`` would produce.
"""

from __future__ import annotations

import abc

import numpy as np

from .._validation import ensure_int, ensure_probability, rng_from
from ..errors import ConfigurationError
from .channel import ChannelSample, CommandDelayTrace


class LossPattern(abc.ABC):
    """Common interface of controlled loss injectors."""

    @abc.abstractmethod
    def _lost_mask(self, rng: np.random.Generator, n_commands: int) -> np.ndarray:
        """Draw one loss-mask realisation from ``rng``."""

    def lost_mask(self, n_commands: int) -> np.ndarray:
        """Boolean array of length ``n_commands``; True marks a lost command."""
        return self._lost_mask(self.rng, n_commands)

    def lost_mask_batch(self, n_commands: int, seeds) -> np.ndarray:
        """``(B, n)`` stacked loss masks, one independent realisation per seed.

        The injector's own RNG is left untouched; row ``b`` equals the mask a
        fresh injector constructed with ``seed=seeds[b]`` would draw.
        """
        seeds = list(seeds)
        if not seeds:
            raise ConfigurationError("lost_mask_batch needs at least one seed")
        return np.stack([self._lost_mask(rng_from(seed), n_commands) for seed in seeds])

    def to_delays(self, n_commands: int, nominal_delay_ms: float = 1.0) -> np.ndarray:
        """Per-command delay array: ``nominal_delay_ms`` or ``inf`` when lost."""
        mask = self.lost_mask(n_commands)
        return np.where(mask, np.inf, float(nominal_delay_ms))

    def to_trace(self, n_commands: int, nominal_delay_ms: float = 1.0) -> CommandDelayTrace:
        """Convert the loss mask into a :class:`CommandDelayTrace`.

        Delivered commands get a constant ``nominal_delay_ms`` delay (the
        controlled experiments run on an otherwise healthy channel).
        """
        mask = self.lost_mask(n_commands)
        trace = CommandDelayTrace()
        for index, lost in enumerate(mask):
            if lost:
                trace.samples.append(ChannelSample(index=index, delay_ms=float("inf"), lost=True))
            else:
                trace.samples.append(ChannelSample(index=index, delay_ms=nominal_delay_ms, lost=False))
        return trace


class ConsecutiveLossInjector(LossPattern):
    """Random bursts of ``burst_length`` consecutive lost commands.

    Parameters
    ----------
    burst_length:
        Number of consecutive commands dropped per burst (5 / 10 / 25 in the
        paper).
    n_bursts:
        How many bursts to inject over the run.
    min_gap:
        Minimum number of delivered commands between two bursts, so that
        FoReCo has genuine history to forecast from after each burst.
    seed:
        RNG seed for reproducible burst placement.
    """

    def __init__(
        self,
        burst_length: int,
        n_bursts: int = 3,
        min_gap: int = 50,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.burst_length = ensure_int("burst_length", burst_length, minimum=1)
        self.n_bursts = ensure_int("n_bursts", n_bursts, minimum=1)
        self.min_gap = ensure_int("min_gap", min_gap, minimum=0)
        self.rng = rng_from(seed)

    def _lost_mask(self, rng: np.random.Generator, n_commands: int) -> np.ndarray:
        n_commands = ensure_int("n_commands", n_commands, minimum=1)
        required = self.n_bursts * (self.burst_length + self.min_gap)
        if required > n_commands:
            raise ConfigurationError(
                f"cannot place {self.n_bursts} bursts of {self.burst_length} lost commands "
                f"with gap {self.min_gap} in only {n_commands} commands"
            )
        mask = np.zeros(n_commands, dtype=bool)
        # Place bursts left-to-right with random slack so they never overlap.
        slack_total = n_commands - required
        slacks = rng.multinomial(slack_total, np.ones(self.n_bursts + 1) / (self.n_bursts + 1))
        cursor = int(slacks[0]) + self.min_gap // 2
        for burst in range(self.n_bursts):
            start = min(cursor, n_commands - self.burst_length)
            mask[start : start + self.burst_length] = True
            cursor = start + self.burst_length + self.min_gap + int(slacks[burst + 1])
        return mask


class PeriodicLossInjector(LossPattern):
    """Deterministic injector: a burst of losses every ``period`` commands."""

    def __init__(self, burst_length: int, period: int, offset: int = 0) -> None:
        self.burst_length = ensure_int("burst_length", burst_length, minimum=1)
        self.period = ensure_int("period", period, minimum=1)
        self.offset = ensure_int("offset", offset, minimum=0)
        self.rng = rng_from(None)  # unused: the pattern is deterministic
        if self.burst_length >= self.period:
            raise ConfigurationError("burst_length must be smaller than period")

    def _lost_mask(self, rng: np.random.Generator, n_commands: int) -> np.ndarray:
        n_commands = ensure_int("n_commands", n_commands, minimum=1)
        mask = np.zeros(n_commands, dtype=bool)
        start = self.offset
        while start < n_commands:
            mask[start : min(n_commands, start + self.burst_length)] = True
            start += self.period
        return mask


class RandomLossInjector(LossPattern):
    """Memoryless i.i.d. Bernoulli loss injector (ablation baseline)."""

    def __init__(self, loss_probability: float, seed: int | np.random.Generator | None = None) -> None:
        self.loss_probability = ensure_probability("loss_probability", loss_probability)
        self.rng = rng_from(seed)

    def _lost_mask(self, rng: np.random.Generator, n_commands: int) -> np.ndarray:
        n_commands = ensure_int("n_commands", n_commands, minimum=1)
        return rng.random(n_commands) < self.loss_probability
