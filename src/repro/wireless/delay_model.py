"""Retransmission and delay distribution of commands on the 802.11 link.

Starting from the DCF solution (:class:`repro.wireless.bianchi.DcfSolution`)
this module derives the quantities the paper uses throughout §V and the
Appendix:

* ``a_j`` — the steady-state probability that a frame is delivered after
  exactly ``j`` unsuccessful retransmissions (``j = 0 .. m+1``), and
  ``a_{m+2}`` — the probability that the frame is discarded because the
  retransmission limit is exceeded,
* ``E_j[Δ_W]`` — the mean wireless delay of a frame delivered after ``j``
  retransmissions (paper eq. 20):

  .. math::

      E_j[\\Delta_W] = T_s + j\\,T_{col}
          + \\tilde\\sigma \\sum_{k=0}^{j} \\frac{W_k - 1}{2}

* the hyper-exponential service distribution of the G/HEXP/1/Q queue whose
  phase ``j`` has probability ``a_j / (1 - a_{m+2})`` and rate
  ``1 / E_j[Δ_W]``,
* the Appendix results: the average-delay bound of Lemma 1, the divergence
  probability of Corollary 1 and the causality-assumption violation of
  Lemma 2 / Corollary 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..des.distributions import HyperExponential
from ..errors import ChannelError
from .bianchi import DcfModel, DcfParameters, DcfSolution


@dataclass
class RetransmissionDistribution:
    """Distribution of the number of retransmissions of one frame.

    Attributes
    ----------
    probabilities:
        Array ``a_0 .. a_{m+1}`` of delivery-after-``j``-retransmission
        probabilities.  They sum to ``1 - loss_probability``.
    loss_probability:
        ``a_{m+2}``: probability the frame is dropped after exhausting the
        retry limit.
    """

    probabilities: np.ndarray
    loss_probability: float

    def __post_init__(self) -> None:
        self.probabilities = np.asarray(self.probabilities, dtype=float)
        total = self.probabilities.sum() + self.loss_probability
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ChannelError(f"retransmission probabilities must sum to 1, got {total}")

    @property
    def max_retransmissions(self) -> int:
        """Largest number of retransmissions after which delivery can occur."""
        return self.probabilities.size - 1

    def delivery_probability(self) -> float:
        """Probability the frame is eventually delivered (``1 - a_{m+2}``)."""
        return float(self.probabilities.sum())

    def conditional_probabilities(self) -> np.ndarray:
        """``a_j`` renormalised over delivered frames (phase weights)."""
        delivered = self.delivery_probability()
        if delivered <= 0:
            raise ChannelError("frame is never delivered; conditional distribution undefined")
        return self.probabilities / delivered

    def mean_retransmissions(self) -> float:
        """Expected number of retransmissions of a delivered frame."""
        j = np.arange(self.probabilities.size)
        return float(np.sum(j * self.conditional_probabilities()))


class Ieee80211DelayModel:
    """Per-command wireless delay model for an interference-prone 802.11 link.

    Parameters
    ----------
    params:
        MAC/PHY parameters, number of contending stations (robots) and the
        interference source.

    The model solves the DCF fixed point once at construction and exposes the
    derived retransmission distribution, per-retransmission delays and the
    hyper-exponential queue service distribution.
    """

    def __init__(self, params: DcfParameters) -> None:
        self.params = params
        self.solution: DcfSolution = DcfModel(params).solve()
        self._retx = self._build_retransmission_distribution()
        self._delays_ms = self._per_retransmission_delays_ms()

    # --------------------------------------------------------- distributions
    def _build_retransmission_distribution(self) -> RetransmissionDistribution:
        p = self.solution.failure_probability
        max_retries = self.params.retry_limit
        # A frame delivered after j failed attempts occurs w.p. p^j (1 - p);
        # exceeding the limit (j = max_retries + 1 attempts all failed) loses it.
        js = np.arange(max_retries + 1)
        probs = (p ** js) * (1.0 - p)
        loss = p ** (max_retries + 1)
        return RetransmissionDistribution(probabilities=probs, loss_probability=float(loss))

    def _per_retransmission_delays_ms(self) -> np.ndarray:
        """``E_j[Δ_W]`` in milliseconds for ``j = 0 .. retry_limit``."""
        params = self.params
        sigma_us = self.solution.mean_slot_time_us
        t_s = params.transmission_time_us()
        t_col = params.collision_time_us()
        delays_us = []
        for j in range(params.retry_limit + 1):
            backoff_slots = sum(
                (params.contention_window(k) - 1) / 2.0 for k in range(j + 1)
            )
            delays_us.append(t_s + j * t_col + sigma_us * backoff_slots)
        return np.asarray(delays_us) / 1000.0

    @property
    def retransmission_distribution(self) -> RetransmissionDistribution:
        """Steady-state distribution of per-frame retransmission counts."""
        return self._retx

    @property
    def per_retransmission_delays_ms(self) -> np.ndarray:
        """Mean delay ``E_j[Δ_W]`` (ms) of a frame delivered after ``j`` RTX."""
        return self._delays_ms.copy()

    @property
    def loss_probability(self) -> float:
        """Probability ``a_{m+2}`` that a command is lost on the air."""
        return self._retx.loss_probability

    def mean_delay_ms(self) -> float:
        """Mean wireless delay of a *delivered* command (paper eq. 16 rescaled)."""
        cond = self._retx.conditional_probabilities()
        return float(np.sum(cond * self._delays_ms))

    def service_distribution(self) -> HyperExponential:
        """Hyper-exponential service distribution of the G/HEXP/1/Q queue."""
        cond = self._retx.conditional_probabilities()
        rates = 1.0 / self._delays_ms
        return HyperExponential(probs=cond, rates=rates)

    # ------------------------------------------------------------- appendix
    def expected_delay_bound_ms(self, transport_bound_ms: float = 0.0) -> float:
        """Lemma 1: bound on ``E[Δ(c_i)]`` conditioned on the command not being lost.

        ``D + (1 / (1 - a_{m+2})) * Σ_j a_j E_j[Δ_W]``.
        """
        delivered = self._retx.delivery_probability()
        weighted = float(np.sum(self._retx.probabilities * self._delays_ms))
        return transport_bound_ms + weighted / delivered

    def divergence_probability(self) -> float:
        """Corollary 1: ``P(Δ(c_i) > K, ∀K) = a_{m+2} > 0`` under interference."""
        return self.loss_probability

    def causality_holds_probability(self) -> float:
        """Lemma 2: the causality assumption only holds w.p. ``Σ_j a_j²``."""
        return float(np.sum(self._retx.probabilities ** 2))


def expected_delay_bound(model: Ieee80211DelayModel, transport_bound_ms: float = 0.0) -> float:
    """Module-level convenience wrapper around :meth:`Ieee80211DelayModel.expected_delay_bound_ms`."""
    return model.expected_delay_bound_ms(transport_bound_ms)


def causality_violation_probability(model: Ieee80211DelayModel) -> float:
    """Probability that the causality assumption (paper eq. 18) is violated."""
    return 1.0 - model.causality_holds_probability()
