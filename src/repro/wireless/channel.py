"""Per-command wireless channel sampler used by the simulation experiments.

The simulation evaluation (§VI-C) replays an operator's command stream and
needs, for every command ``c_i``, the wireless delay ``Δ_W(c_i)`` it would
experience on an interference-prone 802.11 link shared by ``n`` robots.
:class:`WirelessChannel` produces those delays by combining two effects, both
parameterised from the paper's sweep (number of robots, interference
probability ``p_if``, interference duration ``T_if``):

1. **Contention**: per-frame service times are drawn from the
   hyper-exponential distribution implied by the Bianchi DCF solution for
   ``n`` contending stations (:mod:`repro.wireless.delay_model`).  More robots
   sharing the medium means more collisions, longer retransmission chains and
   a larger residual air-loss probability.

2. **Electromagnetic interference**: the non-802.11 source is an ON/OFF
   process in continuous time.  It starts emitting with probability ``p_if``
   per MAC transmission slot and then occupies the medium for ``T_if``
   transmission slots.  While it is ON the access point cannot transmit, so
   commands queue up behind the interferer (the G/HEXP/1/Q buffer of the
   paper); when it turns OFF the backlog drains at the contention-limited
   service rate.  Commands whose transmission overlaps a burst additionally
   risk exhausting the 802.11 retry limit and being dropped.

The resulting per-command end-to-end delay therefore exhibits exactly the
behaviours the paper's analytical model predicts: it is bounded only on
average, it diverges for lost commands, and consecutive commands can see
wildly different delays (causality violation) whenever a burst begins or ends.
The output is a :class:`CommandDelayTrace`, a light container the recovery
engine and the driver consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import ensure_int, ensure_positive, ensure_probability, rng_from
from ..des.jackson import TransportNetworkModel
from .bianchi import DcfParameters, InterferenceSource
from .delay_model import Ieee80211DelayModel


@dataclass
class ChannelSample:
    """Delay outcome of a single command on the wireless channel."""

    index: int
    delay_ms: float
    lost: bool

    @property
    def delivered(self) -> bool:
        """True if the command eventually reached the robot."""
        return not self.lost and np.isfinite(self.delay_ms)


@dataclass
class CommandDelayTrace:
    """Sequence of per-command delays produced by a channel simulation."""

    samples: list[ChannelSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    def delays(self) -> np.ndarray:
        """Per-command delays in ms (``inf`` for lost commands)."""
        return np.array([s.delay_ms for s in self.samples])

    def loss_rate(self) -> float:
        """Fraction of commands that never reached the robot."""
        if not self.samples:
            return 0.0
        return sum(1 for s in self.samples if s.lost) / len(self.samples)

    def late_rate(self, tolerance_ms: float) -> float:
        """Fraction of commands with ``Δ(c_i) > τ`` (lost commands included)."""
        if not self.samples:
            return 0.0
        late = sum(1 for s in self.samples if s.lost or s.delay_ms > tolerance_ms)
        return late / len(self.samples)

    def mean_delivered_delay(self) -> float:
        """Mean delay over delivered commands only."""
        delivered = [s.delay_ms for s in self.samples if s.delivered]
        if not delivered:
            return float("nan")
        return float(np.mean(delivered))

    def longest_outage(self, tolerance_ms: float) -> int:
        """Longest run of consecutive late/lost commands."""
        longest = current = 0
        for sample in self.samples:
            if sample.lost or sample.delay_ms > tolerance_ms:
                current += 1
                longest = max(longest, current)
            else:
                current = 0
        return longest


class WirelessChannel:
    """End-to-end command delay sampler for an 802.11 link with interference.

    Parameters
    ----------
    n_robots:
        Number of robots (802.11 stations) sharing the wireless medium.
    interference:
        The non-802.11 interference source configuration (``p_if``, ``T_if``).
    command_period_ms:
        Command inter-arrival time Ω in milliseconds (paper: 20 ms).
    queue_capacity:
        Access-point buffer size ``Q`` of the G/HEXP/1/Q model.
    transport:
        Optional transport-network model; ``None`` means the negligible
        transport delay assumed in §VI-C (``D ≈ 0``).
    transmission_slot_ms:
        Duration of one interference "transmission slot" in milliseconds: the
        interferer occupies ``T_if`` of these once it fires.  The default
        (1.5 ms ≈ the airtime of one command frame plus contention overhead
        under load) maps the paper's sweep of 10–100 slots onto 15–150 ms
        bursts.  The interferer gets one firing opportunity per command
        period, taken with probability ``p_if``.
    interference_block_probability:
        Probability that a frame transmitted while the interferer is ON is
        actually blocked by it (and must wait the burst out).  Values below
        one model PHY capture and the narrowband nature of the jammer: short
        command frames sometimes get through between interference pulses.
    interference_loss_probability:
        Probability that a command whose transmission was blocked by an
        interference burst exhausts the 802.11 retry limit and is dropped.
    dcf_params:
        Optional full DCF parameter set for the contention model; its station
        count is overridden by ``n_robots``.
    seed:
        RNG seed for reproducible traces.
    """

    def __init__(
        self,
        n_robots: int = 5,
        interference: InterferenceSource | None = None,
        command_period_ms: float = 20.0,
        queue_capacity: int = 50,
        transport: TransportNetworkModel | None = None,
        transmission_slot_ms: float = 1.5,
        interference_block_probability: float = 1.0,
        interference_loss_probability: float = 0.6,
        dcf_params: DcfParameters | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        n_robots = ensure_int("n_robots", n_robots, minimum=1)
        self.command_period_ms = ensure_positive("command_period_ms", command_period_ms)
        self.queue_capacity = ensure_int("queue_capacity", queue_capacity, minimum=1)
        self.transmission_slot_ms = ensure_positive("transmission_slot_ms", transmission_slot_ms)
        self.interference_block_probability = ensure_probability(
            "interference_block_probability", interference_block_probability
        )
        self.interference_loss_probability = ensure_probability(
            "interference_loss_probability", interference_loss_probability
        )
        self.interference = interference if interference is not None else InterferenceSource()
        self.transport = transport
        self.rng = rng_from(seed)

        # Contention model: Bianchi DCF for n stations, no interference term
        # (interference is realised in the time domain below).
        contention_params = dcf_params if dcf_params is not None else DcfParameters()
        contention_params.n_stations = n_robots
        contention_params.interference = InterferenceSource()
        self.params = contention_params
        self.contention_model = Ieee80211DelayModel(contention_params)

        # Interference-aware analytical model (used for the Appendix results
        # and the analytical late-probability estimate).
        analytic_params = DcfParameters(**{
            **contention_params.__dict__,
            "interference": self.interference,
        })
        self.delay_model = Ieee80211DelayModel(analytic_params)

    # --------------------------------------------------------------- bursts
    def burst_duration_ms(self) -> float:
        """Continuous-time duration of one interference burst."""
        if not self.interference.is_active:
            return 0.0
        return self.interference.duration_slots * self.transmission_slot_ms

    def mean_gap_ms(self) -> float:
        """Mean idle time between consecutive interference bursts.

        The interferer gets one firing opportunity per command period and
        takes it with probability ``p_if``, so the mean quiet gap is
        ``Ω / p_if`` milliseconds.
        """
        if not self.interference.is_active:
            return float("inf")
        return self.command_period_ms / self.interference.probability

    def interference_duty_cycle(self) -> float:
        """Long-run fraction of time the interferer occupies the medium."""
        if not self.interference.is_active:
            return 0.0
        on = self.burst_duration_ms()
        return on / (on + self.mean_gap_ms())

    def _interference_intervals(self, horizon_ms: float) -> list[tuple[float, float]]:
        """Sample the ON intervals of the interferer over ``[0, horizon_ms]``."""
        intervals: list[tuple[float, float]] = []
        if not self.interference.is_active:
            return intervals
        on = self.burst_duration_ms()
        gap_mean = self.mean_gap_ms()
        t = float(self.rng.exponential(gap_mean))
        while t < horizon_ms:
            intervals.append((t, t + on))
            t += on + float(self.rng.exponential(gap_mean))
        return intervals

    # ------------------------------------------------------------ sampling
    def sample_trace(self, n_commands: int, use_queue: bool = True) -> CommandDelayTrace:
        """Produce the end-to-end delay of ``n_commands`` consecutive commands.

        With ``use_queue=True`` (default, matching the paper) the wireless
        delay is the sojourn time through the access-point queue with
        interference vacations; otherwise delays are drawn i.i.d. from the
        contention service distribution (no queueing, no interference), which
        is useful for fast analytical checks.
        """
        n_commands = ensure_int("n_commands", n_commands, minimum=1)
        if use_queue:
            wireless_delays = self._medium_delays(n_commands)
        else:
            wireless_delays = self._direct_delays(n_commands)

        if self.transport is not None:
            transport_delays = self.transport.sample_delays(n_commands)
        else:
            transport_delays = np.zeros(n_commands)

        trace = CommandDelayTrace()
        for index in range(n_commands):
            wireless = wireless_delays[index]
            if np.isinf(wireless):
                trace.samples.append(ChannelSample(index=index, delay_ms=float("inf"), lost=True))
                continue
            total = float(wireless + transport_delays[index])
            trace.samples.append(ChannelSample(index=index, delay_ms=total, lost=False))
        return trace

    def _medium_delays(self, n_commands: int) -> np.ndarray:
        """Per-command sojourn times through the AP queue with interference.

        The access point is a single server with a finite buffer ``Q``.
        Commands arrive every Ω ms; the server can only transmit while the
        interferer is OFF, so service of a frame is stretched by every ON
        interval it overlaps (the paper's back-off freeze).  A frame whose
        transmission overlaps a burst is dropped with
        ``interference_loss_probability`` (retry limit exceeded); the
        contention model additionally contributes its own air-loss
        probability.  Arrivals that find the buffer full are dropped.
        """
        service_dist = self.contention_model.service_distribution()
        base_loss = self.contention_model.loss_probability
        horizon_ms = (n_commands + 1) * self.command_period_ms
        intervals = self._interference_intervals(horizon_ms)

        def advance_through_interference(start: float, work_ms: float) -> tuple[float, bool]:
            """Return (completion time, overlapped_interference) for ``work_ms``
            of transmission work beginning at ``start``."""
            t = start
            remaining = work_ms
            overlapped = False
            for on_start, on_end in intervals:
                if on_end <= t:
                    continue
                if t + remaining <= on_start:
                    break
                overlapped = True
                # Work until the burst begins, then wait the burst out.
                remaining -= max(0.0, on_start - t)
                t = max(t, on_start)
                t = on_end
            return t + max(0.0, remaining), overlapped

        delays = np.full(n_commands, np.inf)
        server_free = 0.0
        completion_times: list[float] = []
        for index in range(n_commands):
            arrival = index * self.command_period_ms
            backlog = sum(1 for c in completion_times if c > arrival)
            if backlog > self.queue_capacity:
                continue  # buffer overflow: command dropped
            start = max(arrival, server_free)
            work = float(service_dist.sample(self.rng))
            if self.rng.random() < self.interference_block_probability:
                completion, overlapped = advance_through_interference(start, work)
            else:
                # PHY capture / narrowband jammer: the short frame slips
                # through even if the interferer is nominally active.
                completion, overlapped = start + work, False
            server_free = completion
            completion_times.append(completion)
            if len(completion_times) > self.queue_capacity + 1:
                completion_times = completion_times[-(self.queue_capacity + 1) :]
            lost = self.rng.random() < base_loss
            if overlapped and self.rng.random() < self.interference_loss_probability:
                lost = True
            if not lost:
                delays[index] = completion - arrival
        return delays

    def _direct_delays(self, n_commands: int) -> np.ndarray:
        """I.i.d. contention delays with air-loss applied (no queueing)."""
        service = self.contention_model.service_distribution()
        delays = service.sample_many(self.rng, n_commands)
        lost = self.rng.random(n_commands) < self.contention_model.loss_probability
        delays = delays.astype(float)
        delays[lost] = float("inf")
        return delays

    # ----------------------------------------------------------- analytics
    def expected_late_probability(self, tolerance_ms: float) -> float:
        """Analytical estimate of ``P(Δ(c_i) > τ)`` ignoring queueing.

        Combines the interference duty cycle (a command whose transmission
        overlaps a burst is late with probability close to one) with the
        contention model's air-loss probability and hyper-exponential delay
        tail.  The medium simulation gives the exact figure; tests use this
        estimate as a consistency lower bound on the trace generator.
        """
        service = self.contention_model.service_distribution()
        tail = float(np.sum(service.probs * np.exp(-service.rates * max(tolerance_ms, 0.0))))
        loss = self.contention_model.loss_probability
        contention_late = loss + (1.0 - loss) * tail
        duty = self.interference_duty_cycle() * self.interference_block_probability
        return duty + (1.0 - duty) * contention_late
