"""Per-command wireless channel sampler used by the simulation experiments.

The simulation evaluation (§VI-C) replays an operator's command stream and
needs, for every command ``c_i``, the wireless delay ``Δ_W(c_i)`` it would
experience on an interference-prone 802.11 link shared by ``n`` robots.
:class:`WirelessChannel` produces those delays by combining two effects, both
parameterised from the paper's sweep (number of robots, interference
probability ``p_if``, interference duration ``T_if``):

1. **Contention**: per-frame service times are drawn from the
   hyper-exponential distribution implied by the Bianchi DCF solution for
   ``n`` contending stations (:mod:`repro.wireless.delay_model`).  More robots
   sharing the medium means more collisions, longer retransmission chains and
   a larger residual air-loss probability.

2. **Electromagnetic interference**: the non-802.11 source is an ON/OFF
   process in continuous time.  It starts emitting with probability ``p_if``
   per MAC transmission slot and then occupies the medium for ``T_if``
   transmission slots.  While it is ON the access point cannot transmit, so
   commands queue up behind the interferer (the G/HEXP/1/Q buffer of the
   paper); when it turns OFF the backlog drains at the contention-limited
   service rate.  Commands whose transmission overlaps a burst additionally
   risk exhausting the 802.11 retry limit and being dropped.

The resulting per-command end-to-end delay therefore exhibits exactly the
behaviours the paper's analytical model predicts: it is bounded only on
average, it diverges for lost commands, and consecutive commands can see
wildly different delays (causality violation) whenever a burst begins or ends.
The output is a :class:`CommandDelayTrace`, a light container the recovery
engine and the driver consume.

Sampling comes in two flavours with one randomness contract:

* :meth:`WirelessChannel.sample_trace` — the serial reference path, one
  repetition at a time.  It is the bit-equality oracle for the batched path.
* :meth:`WirelessChannel.sample_delays_batch` — ``B`` repetitions advanced in
  lockstep ``(B, n)`` NumPy arrays (one Python iteration per command instead
  of one per command per repetition).  Row ``b`` consumes the RNG stream of
  ``seeds[b]`` exactly as the serial path would, and the queue recursion is
  the same Lindley-style ``start = max(arrival, server_free)`` update applied
  elementwise, so the stacked result is bit-identical to ``B`` serial runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .._validation import ensure_int, ensure_positive, ensure_probability, rng_from
from ..des.jackson import TransportNetworkModel
from ..errors import ConfigurationError
from .bianchi import DcfParameters, InterferenceSource
from .delay_model import Ieee80211DelayModel


@dataclass
class ChannelSample:
    """Delay outcome of a single command on the wireless channel."""

    index: int
    delay_ms: float
    lost: bool

    @property
    def delivered(self) -> bool:
        """True if the command eventually reached the robot."""
        return not self.lost and np.isfinite(self.delay_ms)


@dataclass
class CommandDelayTrace:
    """Sequence of per-command delays produced by a channel simulation."""

    samples: list[ChannelSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    def delays(self) -> np.ndarray:
        """Per-command delays in ms (``inf`` for lost commands)."""
        return np.array([s.delay_ms for s in self.samples])

    def loss_rate(self) -> float:
        """Fraction of commands that never reached the robot."""
        if not self.samples:
            return 0.0
        return sum(1 for s in self.samples if s.lost) / len(self.samples)

    def late_rate(self, tolerance_ms: float) -> float:
        """Fraction of commands with ``Δ(c_i) > τ`` (lost commands included)."""
        if not self.samples:
            return 0.0
        late = sum(1 for s in self.samples if s.lost or s.delay_ms > tolerance_ms)
        return late / len(self.samples)

    def mean_delivered_delay(self) -> float:
        """Mean delay over delivered commands only."""
        delivered = [s.delay_ms for s in self.samples if s.delivered]
        if not delivered:
            return float("nan")
        return float(np.mean(delivered))

    def longest_outage(self, tolerance_ms: float) -> int:
        """Longest run of consecutive late/lost commands."""
        longest = current = 0
        for sample in self.samples:
            if sample.lost or sample.delay_ms > tolerance_ms:
                current += 1
                longest = max(longest, current)
            else:
                current = 0
        return longest


def trace_from_delays(delays: np.ndarray) -> CommandDelayTrace:
    """Wrap a per-command delay array (``inf`` = lost) in a trace container."""
    trace = CommandDelayTrace()
    for index, delay in enumerate(delays):
        lost = bool(np.isinf(delay))
        trace.samples.append(
            ChannelSample(index=index, delay_ms=float(delay), lost=lost)
        )
    return trace


class WirelessChannel:
    """End-to-end command delay sampler for an 802.11 link with interference.

    Parameters
    ----------
    n_robots:
        Number of robots (802.11 stations) sharing the wireless medium.
    interference:
        The non-802.11 interference source configuration (``p_if``, ``T_if``).
    command_period_ms:
        Command inter-arrival time Ω in milliseconds (paper: 20 ms).
    queue_capacity:
        Access-point buffer size ``Q`` of the G/HEXP/1/Q model: an arriving
        command that finds ``Q`` commands in the system is dropped.
    transport:
        Optional transport-network model; ``None`` means the negligible
        transport delay assumed in §VI-C (``D ≈ 0``).
    transmission_slot_ms:
        Duration of one interference "transmission slot" in milliseconds: the
        interferer occupies ``T_if`` of these once it fires.  The default
        (1.5 ms ≈ the airtime of one command frame plus contention overhead
        under load) maps the paper's sweep of 10–100 slots onto 15–150 ms
        bursts.  The interferer gets one firing opportunity per command
        period, taken with probability ``p_if``.
    interference_block_probability:
        Probability that a frame transmitted while the interferer is ON is
        actually blocked by it (and must wait the burst out).  Values below
        one model PHY capture and the narrowband nature of the jammer: short
        command frames sometimes get through between interference pulses.
    interference_loss_probability:
        Probability that a command whose transmission was blocked by an
        interference burst exhausts the 802.11 retry limit and is dropped.
    dcf_params:
        Optional full DCF parameter set for the contention model.  The object
        is copied — its station count and interference term are overridden on
        the copy, never on the caller's instance — so one parameter set can
        safely configure several channels.
    seed:
        RNG seed for reproducible traces.
    """

    def __init__(
        self,
        n_robots: int = 5,
        interference: InterferenceSource | None = None,
        command_period_ms: float = 20.0,
        queue_capacity: int = 50,
        transport: TransportNetworkModel | None = None,
        transmission_slot_ms: float = 1.5,
        interference_block_probability: float = 1.0,
        interference_loss_probability: float = 0.6,
        dcf_params: DcfParameters | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        n_robots = ensure_int("n_robots", n_robots, minimum=1)
        self.command_period_ms = ensure_positive("command_period_ms", command_period_ms)
        self.queue_capacity = ensure_int("queue_capacity", queue_capacity, minimum=1)
        self.transmission_slot_ms = ensure_positive("transmission_slot_ms", transmission_slot_ms)
        self.interference_block_probability = ensure_probability(
            "interference_block_probability", interference_block_probability
        )
        self.interference_loss_probability = ensure_probability(
            "interference_loss_probability", interference_loss_probability
        )
        self.interference = interference if interference is not None else InterferenceSource()
        self.transport = transport
        self.rng = rng_from(seed)

        # Contention model: Bianchi DCF for n stations, no interference term
        # (interference is realised in the time domain below).  The caller's
        # dcf_params is copied, not mutated.
        base_params = dcf_params if dcf_params is not None else DcfParameters()
        contention_params = replace(
            base_params, n_stations=n_robots, interference=InterferenceSource()
        )
        self.params = contention_params
        self.contention_model = Ieee80211DelayModel(contention_params)

        # Interference-aware analytical model (used for the Appendix results
        # and the analytical late-probability estimate).
        analytic_params = replace(contention_params, interference=self.interference)
        self.delay_model = Ieee80211DelayModel(analytic_params)

    # --------------------------------------------------------------- bursts
    def burst_duration_ms(self) -> float:
        """Continuous-time duration of one interference burst."""
        if not self.interference.is_active:
            return 0.0
        return self.interference.duration_slots * self.transmission_slot_ms

    def mean_gap_ms(self) -> float:
        """Mean idle time between consecutive interference bursts.

        The interferer gets one firing opportunity per command period and
        takes it with probability ``p_if``, so the mean quiet gap is
        ``Ω / p_if`` milliseconds.
        """
        if not self.interference.is_active:
            return float("inf")
        return self.command_period_ms / self.interference.probability

    def interference_duty_cycle(self) -> float:
        """Long-run fraction of time the interferer occupies the medium."""
        if not self.interference.is_active:
            return 0.0
        on = self.burst_duration_ms()
        return on / (on + self.mean_gap_ms())

    def _interference_intervals(
        self, horizon_ms: float, rng: np.random.Generator | None = None
    ) -> list[tuple[float, float]]:
        """Sample the ON intervals of the interferer over ``[0, horizon_ms]``."""
        rng = self.rng if rng is None else rng
        intervals: list[tuple[float, float]] = []
        if not self.interference.is_active:
            return intervals
        on = self.burst_duration_ms()
        gap_mean = self.mean_gap_ms()
        t = float(rng.exponential(gap_mean))
        while t < horizon_ms:
            intervals.append((t, t + on))
            t += on + float(rng.exponential(gap_mean))
        return intervals

    # ------------------------------------------------------------ sampling
    def sample_trace(self, n_commands: int, use_queue: bool = True) -> CommandDelayTrace:
        """Produce the end-to-end delay of ``n_commands`` consecutive commands.

        With ``use_queue=True`` (default, matching the paper) the wireless
        delay is the sojourn time through the access-point queue with
        interference vacations; otherwise delays are drawn i.i.d. from the
        contention service distribution (no queueing, no interference), which
        is useful for fast analytical checks.
        """
        n_commands = ensure_int("n_commands", n_commands, minimum=1)
        if use_queue:
            wireless_delays = self._medium_delays(n_commands)
        else:
            wireless_delays = self._direct_delays(n_commands)

        if self.transport is not None:
            transport_delays = self.transport.sample_delays(n_commands)
        else:
            transport_delays = np.zeros(n_commands)

        trace = CommandDelayTrace()
        for index in range(n_commands):
            wireless = wireless_delays[index]
            if np.isinf(wireless):
                trace.samples.append(ChannelSample(index=index, delay_ms=float("inf"), lost=True))
                continue
            total = float(wireless + transport_delays[index])
            trace.samples.append(ChannelSample(index=index, delay_ms=total, lost=False))
        return trace

    def _draw_queue_randomness(self, rng: np.random.Generator, n_commands: int):
        """All random inputs of the queue simulation, in fixed block order.

        Both the serial and the batched path consume one repetition's RNG
        stream through this helper — interference intervals first, then the
        per-command service times, block, air-loss and interference-loss
        draws as whole arrays — so a given seed yields the same randomness on
        either path by construction.
        """
        service_dist = self.contention_model.service_distribution()
        horizon_ms = (n_commands + 1) * self.command_period_ms
        intervals = self._interference_intervals(horizon_ms, rng)
        work = service_dist.sample_many(rng, n_commands)
        blocked = rng.random(n_commands) < self.interference_block_probability
        base_lost = rng.random(n_commands) < self.contention_model.loss_probability
        interference_lost = rng.random(n_commands) < self.interference_loss_probability
        return intervals, work, blocked, base_lost, interference_lost

    @staticmethod
    def _advance_through_interference(
        intervals: list[tuple[float, float]], start: float, work_ms: float
    ) -> tuple[float, bool]:
        """Return (completion time, overlapped_interference) for ``work_ms``
        of transmission work beginning at ``start``."""
        t = start
        remaining = work_ms
        overlapped = False
        for on_start, on_end in intervals:
            if on_end <= t:
                continue
            if t + remaining <= on_start:
                break
            overlapped = True
            # Work until the burst begins, then wait the burst out.
            remaining -= max(0.0, on_start - t)
            t = on_end
        return t + max(0.0, remaining), overlapped

    def _medium_delays(
        self, n_commands: int, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Per-command sojourn times through the AP queue with interference.

        The access point is a single server with a finite buffer ``Q``.
        Commands arrive every Ω ms; the server can only transmit while the
        interferer is OFF, so service of a frame is stretched by every ON
        interval it overlaps (the paper's back-off freeze).  A frame whose
        transmission overlaps a burst is dropped with
        ``interference_loss_probability`` (retry limit exceeded); the
        contention model additionally contributes its own air-loss
        probability.  Arrivals that find the buffer full (``Q`` commands in
        the system) are dropped.

        This is the serial reference implementation — the bit-equality
        oracle for :meth:`sample_delays_batch`.
        """
        rng = self.rng if rng is None else rng
        intervals, work, blocked, base_lost, interference_lost = self._draw_queue_randomness(
            rng, n_commands
        )

        delays = np.full(n_commands, np.inf)
        server_free = 0.0
        completions: list[float] = []
        drained = 0  # completions[:drained] are <= the current arrival
        for index in range(n_commands):
            arrival = index * self.command_period_ms
            while drained < len(completions) and completions[drained] <= arrival:
                drained += 1
            if len(completions) - drained >= self.queue_capacity:
                continue  # buffer full: command dropped
            start = max(arrival, server_free)
            if blocked[index]:
                completion, overlapped = self._advance_through_interference(
                    intervals, start, float(work[index])
                )
            else:
                # PHY capture / narrowband jammer: the short frame slips
                # through even if the interferer is nominally active.
                completion, overlapped = start + float(work[index]), False
            server_free = completion
            completions.append(completion)
            lost = bool(base_lost[index])
            if overlapped and interference_lost[index]:
                lost = True
            if not lost:
                delays[index] = completion - arrival
        return delays

    def sample_delays_batch(self, n_commands: int, seeds) -> np.ndarray:
        """``(B, n)`` per-command delays for ``B`` independent repetitions.

        Row ``b`` is bit-identical to ``rng = rng_from(seeds[b])`` followed by
        the serial :meth:`_medium_delays` — same RNG stream, same queue
        recursion — but all rows advance together through one vectorized
        Lindley update (``start = max(arrival, server_free)``) per command,
        so the Python-interpreter cost is paid once per command instead of
        once per command per repetition.

        The lockstep pass is *optimistic about admission*: it assumes every
        arrival fits in the buffer, which keeps backlog bookkeeping out of
        the hot loop.  A vectorized post-check recomputes the backlog every
        command would have seen (one ``searchsorted`` per row over the
        monotone completion times); the rare rows whose backlog ever reaches
        the buffer capacity are re-sampled through the serial oracle, whose
        drop handling is exact by definition.
        """
        n_commands = ensure_int("n_commands", n_commands, minimum=1)
        if self.transport is not None:
            raise ConfigurationError(
                "sample_delays_batch models the wireless medium only; "
                "sample per-repetition traces serially when a transport model is attached"
            )
        seeds = list(seeds)
        if not seeds:
            raise ConfigurationError("sample_delays_batch needs at least one seed")
        batch = len(seeds)
        drawn = [self._draw_queue_randomness(rng_from(seed), n_commands) for seed in seeds]
        work_columns = np.ascontiguousarray(np.stack([d[1] for d in drawn]).T)
        blocked_columns = np.ascontiguousarray(np.stack([d[2] for d in drawn]).T)
        base_lost = np.stack([d[3] for d in drawn])
        interference_lost = np.stack([d[4] for d in drawn])

        # Pad each row's interference intervals to a common width; the +inf
        # sentinel column keeps the per-row interval pointer in bounds.
        widest = max(len(d[0]) for d in drawn)
        on_start = np.full((batch, widest + 1), np.inf)
        on_end = np.full((batch, widest + 1), np.inf)
        for row, d in enumerate(drawn):
            for j, (interval_start, interval_end) in enumerate(d[0]):
                on_start[row, j] = interval_start
                on_end[row, j] = interval_end
        any_interference = widest > 0

        rows = np.arange(batch)
        period = self.command_period_ms
        completion_columns = np.empty((n_commands, batch))
        overlapped_columns = np.zeros((n_commands, batch), dtype=bool)
        server_free = np.zeros(batch)
        iptr = np.zeros(batch, dtype=np.intp)  # first interval with on_end > start

        for index in range(n_commands):
            start = np.maximum(index * period, server_free)
            work_now = work_columns[index]
            if any_interference:
                # Catch the interval pointer up to the service start time
                # (the serial scan's ``on_end <= t: continue``).
                while True:
                    move = on_end[rows, iptr] <= start
                    if not move.any():
                        break
                    iptr += move
                blocked_now = blocked_columns[index]
                engage = blocked_now & (start + work_now > on_start[rows, iptr])
                if engage.any():
                    overlapped = np.zeros(batch, dtype=bool)
                    t = start.copy()
                    remaining = work_now.copy()
                    active = engage
                    while True:
                        overlapped |= active
                        shaved = remaining - np.maximum(0.0, on_start[rows, iptr] - t)
                        remaining = np.where(active, shaved, remaining)
                        t = np.where(active, on_end[rows, iptr], t)
                        iptr = np.where(active, iptr + 1, iptr)
                        active = active & (t + remaining > on_start[rows, iptr])
                        if not active.any():
                            break
                    stretched = t + np.maximum(0.0, remaining)
                    completion = np.where(blocked_now, stretched, start + work_now)
                    overlapped_columns[index] = overlapped
                else:
                    # No service crosses a burst this slot: the stretched
                    # completion ``t + max(0, remaining)`` degenerates to
                    # ``start + work`` for blocked rows too.
                    completion = start + work_now
            else:
                completion = start + work_now
            completion_columns[index] = completion
            server_free = completion

        completions = np.ascontiguousarray(completion_columns.T)
        arrivals = np.arange(n_commands) * period
        lost = base_lost | (overlapped_columns.T & interference_lost)
        delays = np.where(lost, np.inf, completions - arrivals[None, :])

        # Admission repair: the backlog command ``i`` finds is the number of
        # earlier admitted commands still in the system, ``i - #{completion
        # <= arrival_i}``.  Rows that never hit the buffer capacity took no
        # drops, so the optimistic pass already matches the serial oracle;
        # the rest are re-sampled serially (drops reshape their timeline).
        capacity = self.queue_capacity
        indices = np.arange(n_commands)
        for row in range(batch):
            in_system = indices - np.searchsorted(completions[row], arrivals, side="right")
            if np.any(in_system >= capacity):
                delays[row] = self._medium_delays(n_commands, rng_from(seeds[row]))
        return delays

    def _direct_delays(self, n_commands: int) -> np.ndarray:
        """I.i.d. contention delays with air-loss applied (no queueing)."""
        service = self.contention_model.service_distribution()
        delays = service.sample_many(self.rng, n_commands)
        lost = self.rng.random(n_commands) < self.contention_model.loss_probability
        delays = delays.astype(float)
        delays[lost] = float("inf")
        return delays

    # ----------------------------------------------------------- analytics
    def expected_late_probability(self, tolerance_ms: float) -> float:
        """Analytical estimate of ``P(Δ(c_i) > τ)`` ignoring queueing.

        Combines the interference duty cycle (a command whose transmission
        overlaps a burst is late with probability close to one) with the
        contention model's air-loss probability and hyper-exponential delay
        tail.  The medium simulation gives the exact figure; tests use this
        estimate as a consistency lower bound on the trace generator.
        """
        service = self.contention_model.service_distribution()
        tail = float(np.sum(service.probs * np.exp(-service.rates * max(tolerance_ms, 0.0))))
        loss = self.contention_model.loss_probability
        contention_late = loss + (1.0 - loss) * tail
        duty = self.interference_duty_cycle() * self.interference_block_probability
        return duty + (1.0 - duty) * contention_late
