"""Exception hierarchy shared by every ``repro`` subpackage.

The library raises only subclasses of :class:`ReproError` for anticipated
failure modes (bad configuration, mis-shaped inputs, un-trained models).
Programming errors keep raising the standard built-in exceptions so that they
are not accidentally swallowed by callers catching :class:`ReproError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A configuration object or parameter set is invalid or inconsistent."""


class NotFittedError(ReproError):
    """A model was asked to predict before being trained."""


class DimensionError(ReproError):
    """An array argument does not have the expected shape or dimensionality."""


class SimulationError(ReproError):
    """A simulation reached an inconsistent internal state."""


class DatasetError(ReproError):
    """A command dataset is empty, malformed, or fails its quality checks."""


class ChannelError(ReproError):
    """A wireless-channel model received parameters outside its valid domain."""


class RobotError(ReproError):
    """The robot model was driven outside its operational envelope."""


class ValidationError(ReproError):
    """An analytic-oracle tolerance gate failed (simulation vs theory)."""


class StoreError(ReproError):
    """A persisted result-store record is malformed or inconsistent.

    Raised by the shard codecs when a record's envelope (format, epoch,
    content address, kind) or payload fails validation.  The store's
    corruption-tolerant load path catches it and treats the shard as a miss;
    user-reachable codec misuse surfaces it directly.
    """
