"""Package metadata and console entry points.

Install with ``pip install -e .`` (CI does; ``--no-build-isolation`` on
offline hosts where pip cannot fetch the ``wheel`` package).  Two console
scripts point at the same runner: ``foreco-experiments`` (historical name)
and ``repro-experiments`` (the name CI uses), so neither CI nor users need
to hand-set ``PYTHONPATH=src``.
"""

from setuptools import find_packages, setup

setup(
    name="foreco-repro",
    version="1.0.0",
    description="Reproduction of FoReCo: forecast-based recovery for wireless teleoperation",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "foreco-experiments = repro.experiments.runner:main",
            "repro-experiments = repro.experiments.runner:main",
        ]
    },
)
