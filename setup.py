"""Setup shim for environments without PEP 517 build isolation.

The canonical metadata lives in ``pyproject.toml``; this file only exists so
``python setup.py develop`` works on offline hosts where pip cannot fetch the
``wheel`` package required for isolated builds.
"""

from setuptools import setup

setup(
    entry_points={
        "console_scripts": [
            "foreco-experiments = repro.experiments.runner:main",
        ]
    }
)
