#!/usr/bin/env python
"""CI smoke test for the fleet simulator, end to end.

Runs a tiny 4-operator shared-AP fleet through the real CLI code path
(:func:`repro.experiments.runner.run_experiments`) and asserts the
contracts a clean checkout must honour:

* the fleet report is **bit-identical across** ``--jobs 1`` **and**
  ``--jobs 4`` (determinism is seeded from spec content, never from
  scheduling);
* against a store, the second run reports **100% hits** and
  record-for-record identical results (fleet shards share the session
  store's epoch scheme);
* a single-operator fleet is **bit-identical to** ``SessionEngine.run``
  on its template (the solo-equality contract in miniature);
* the **hybrid tier** below the crossover (every occupied AP hot) is
  bit-identical to the exact engine, and a hybrid ``--fleet-tier`` run
  against a warm store reports **100% hits**.

Exit code 0 on success, 1 with a diagnostic on any violated expectation.
Run it from an environment where ``repro`` is importable (CI installs the
package; locally ``PYTHONPATH=src python scripts/fleet_smoke.py`` works).
"""

from __future__ import annotations

import json
import sys
import tempfile

from repro.experiments.runner import run_experiments
from repro.fleet import FleetEngine, HybridFleetEngine, get_fleet
from repro.scenarios import SessionEngine

#: Operator population of the smoke fleet (small but genuinely contended).
OPERATORS = 4


def main() -> int:
    """Run the smoke checks; return a process exit code."""
    failures = []

    serial = json.loads(
        run_experiments([], scale="ci", seed=42, jobs=1, fmt="json", fleet=OPERATORS)
    )
    parallel = json.loads(
        run_experiments([], scale="ci", seed=42, jobs=4, fmt="json", fleet=OPERATORS)
    )
    if serial["fleets"] != parallel["fleets"]:
        failures.append("fleet report differs between --jobs 1 and --jobs 4")
    if not serial["fleets"]:
        failures.append("fleet run produced no preset rows")

    with tempfile.TemporaryDirectory(prefix="foreco-fleet-smoke-") as root:
        first = json.loads(
            run_experiments([], scale="ci", seed=42, jobs=2, fmt="json",
                            fleet=OPERATORS, store=root)
        )
        second = json.loads(
            run_experiments([], scale="ci", seed=42, jobs=2, fmt="json",
                            fleet=OPERATORS, store=root, resume=True)
        )
        expected = len(first["fleets"])
        if (first["store"]["hits"], first["store"]["misses"]) != (0, expected):
            failures.append(f"cold run expected 0/{expected} hits/misses, got {first['store']}")
        if (second["store"]["hits"], second["store"]["misses"]) != (expected, 0):
            failures.append(f"warm run expected 100% hits, got {second['store']}")
        if first["fleets"] != second["fleets"]:
            failures.append("warm fleet records differ from the cold run (round-trip broken)")

    solo = get_fleet("shared-ap", operators=1)
    sessions = SessionEngine()
    fleet_row = FleetEngine(sessions=sessions).run(solo)
    session_row = sessions.run(solo.template)
    if fleet_row.rmse_foreco_mm != session_row.rmse_foreco_mm:
        failures.append("1-operator fleet is not bit-identical to SessionEngine")

    # hybrid tier, below the crossover: every occupied AP classifies hot, so
    # the hybrid result must degenerate to the exact computation bit for bit.
    exact_fleet = get_fleet("shared-ap", operators=OPERATORS)
    hybrid_fleet = exact_fleet.with_(tier="hybrid", hot_threshold=1e-9)
    exact_row = FleetEngine(sessions=sessions).run(exact_fleet)
    hybrid_row = HybridFleetEngine(sessions=sessions).run(hybrid_fleet)
    if (
        hybrid_row.rmse_foreco_mm != exact_row.rmse_foreco_mm
        or hybrid_row.completion_time_s != exact_row.completion_time_s
        or hybrid_row.recovery_fraction != exact_row.recovery_fraction
    ):
        failures.append("all-hot hybrid fleet is not bit-identical to the exact engine")
    if hybrid_row.tier != "hybrid" or hybrid_row.analytic_sessions != 0:
        failures.append("all-hot hybrid fleet reported unexpected tier metadata")

    with tempfile.TemporaryDirectory(prefix="foreco-fleet-smoke-") as root:
        cold = json.loads(
            run_experiments([], scale="ci", seed=42, jobs=2, fmt="json",
                            fleet=OPERATORS, fleet_tier="hybrid", store=root)
        )
        warm = json.loads(
            run_experiments([], scale="ci", seed=42, jobs=2, fmt="json",
                            fleet=OPERATORS, fleet_tier="hybrid", store=root,
                            resume=True)
        )
        expected = len(cold["fleets"])
        if (warm["store"]["hits"], warm["store"]["misses"]) != (expected, 0):
            failures.append(f"warm hybrid run expected 100% hits, got {warm['store']}")
        if cold["fleets"] != warm["fleets"]:
            failures.append("warm hybrid records differ from the cold run")
        if set(cold["fleet_tier"]["tiers"].values()) != {"hybrid"}:
            failures.append("--fleet-tier hybrid override did not reach every preset")

    if failures:
        for failure in failures:
            print(f"FLEET SMOKE FAILURE: {failure}", file=sys.stderr)
        return 1
    print(
        f"fleet smoke ok: {len(serial['fleets'])} presets x {OPERATORS} operators, "
        "jobs-invariant, 100% warm hits (exact + hybrid), solo == session, "
        "all-hot hybrid == exact"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
