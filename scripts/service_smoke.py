#!/usr/bin/env python
"""CI smoke test for the live-service loop, end to end.

Serves a tiny truncated workload through the real CLI code path
(:func:`repro.experiments.runner.run_experiments`) and asserts the
contracts a clean checkout must honour:

* the serve report is **bit-identical across** ``--jobs 1`` **and**
  ``--jobs 4`` (live admission is seeded from spec content, never from
  scheduling or the wall clock);
* against a store, the second pass reports **100% hits** and
  record-for-record identical results — **snapshot streams included**
  (live replay determinism through the store codec);
* a ``static-cap`` service is **bit-identical to** ``FleetEngine.run``
  on its workload (the anchor contract in miniature).

Exit code 0 on success, 1 with a diagnostic on any violated expectation.
Run it from an environment where ``repro`` is importable (CI installs the
package; locally ``PYTHONPATH=src python scripts/service_smoke.py`` works).
"""

from __future__ import annotations

import json
import sys
import tempfile

from repro.experiments.runner import run_experiments
from repro.fleet import FleetEngine, get_fleet
from repro.service import ServiceEngine, ServiceSpec

#: Virtual admission horizon (s) keeping the smoke serve tiny.
UNTIL_S = 120.0


def main() -> int:
    """Run the smoke checks; return a process exit code."""
    failures = []

    serial = json.loads(
        run_experiments(["serve"], scale="ci", seed=42, jobs=1, fmt="json", until=UNTIL_S)
    )
    parallel = json.loads(
        run_experiments(["serve"], scale="ci", seed=42, jobs=4, fmt="json", until=UNTIL_S)
    )
    if serial["services"] != parallel["services"]:
        failures.append("serve report differs between --jobs 1 and --jobs 4")
    if not serial["services"]:
        failures.append("serve run produced no preset rows")
    if any(not row["snapshots"] for row in serial["services"]):
        failures.append("a service row carries no snapshot stream")

    with tempfile.TemporaryDirectory(prefix="foreco-service-smoke-") as root:
        first = json.loads(
            run_experiments(["serve"], scale="ci", seed=42, jobs=2, fmt="json",
                            until=UNTIL_S, store=root)
        )
        second = json.loads(
            run_experiments(["serve"], scale="ci", seed=42, jobs=2, fmt="json",
                            until=UNTIL_S, store=root, resume=True)
        )
        expected = len(first["services"])
        if (first["store"]["hits"], first["store"]["misses"]) != (0, expected):
            failures.append(f"cold serve expected 0/{expected} hits/misses, got {first['store']}")
        if (second["store"]["hits"], second["store"]["misses"]) != (expected, 0):
            failures.append(f"warm serve expected 100% hits, got {second['store']}")
        if first["services"] != second["services"]:
            failures.append("warm service records differ from the cold run (snapshots included)")

    # Anchor contract: a static-cap service admits and executes exactly the
    # sessions the fleet engine would.
    fleet = get_fleet("shared-ap", operators=4, arrival="poisson", arrival_rate_hz=0.3)
    service_row = ServiceEngine().run(ServiceSpec(fleet=fleet, policy="static-cap"))
    fleet_row = FleetEngine().run(fleet)
    if (
        service_row.admitted != fleet_row.admitted
        or service_row.rmse_foreco_mm != fleet_row.rmse_foreco_mm
        or service_row.completion_time_s != fleet_row.completion_time_s
    ):
        failures.append("static-cap service is not bit-identical to FleetEngine")

    if failures:
        for failure in failures:
            print(f"SERVICE SMOKE FAILURE: {failure}", file=sys.stderr)
        return 1
    print(
        f"service smoke ok: {len(serial['services'])} presets served to {UNTIL_S:g}s, "
        "jobs-invariant, 100% warm hits with identical snapshot streams, "
        "static-cap == fleet"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
