#!/usr/bin/env python
"""CI smoke test for the persistent result store, end to end.

Runs a tiny scenario sweep twice through the real CLI code path
(:func:`repro.experiments.runner.run_experiments`) against a temporary
store and asserts the resumable-execution contract on a clean checkout:

* the first run computes everything (0 hits) and persists it;
* the second run — with ``--resume`` semantics — reports **100% hits**,
  computes nothing, and returns record-for-record identical results.

Exit code 0 on success, 1 with a diagnostic on any violated expectation.
Run it from an environment where ``repro`` is importable (CI installs the
package; locally ``PYTHONPATH=src python scripts/store_smoke.py`` works).
"""

from __future__ import annotations

import json
import sys
import tempfile

from repro.experiments.runner import run_experiments

#: Small presets exercising two different channel kinds.
SCENARIOS = ["bursty-loss", "random-loss"]


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="foreco-store-smoke-") as root:
        first = json.loads(
            run_experiments([], scale="ci", seed=42, jobs=2, fmt="json",
                            scenarios=SCENARIOS, store=root)
        )
        second = json.loads(
            run_experiments([], scale="ci", seed=42, jobs=2, fmt="json",
                            scenarios=SCENARIOS, store=root, resume=True)
        )

    failures = []
    expected = len(SCENARIOS)
    if (first["store"]["hits"], first["store"]["misses"]) != (0, expected):
        failures.append(f"cold run expected 0/{expected} hits/misses, got {first['store']}")
    if (second["store"]["hits"], second["store"]["misses"]) != (expected, 0):
        failures.append(f"warm run expected 100% hits, got {second['store']}")
    if first["scenarios"] != second["scenarios"]:
        failures.append("warm records differ from the cold run (round-trip broken)")
    if first["store"]["entries"] != expected:
        failures.append(f"store holds {first['store']['entries']} entries, expected {expected}")

    if failures:
        for failure in failures:
            print(f"store smoke FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"store smoke ok: {expected} specs computed once, second run "
        f"{second['store']['hits']}/{expected} hits (100% reused), records identical"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
