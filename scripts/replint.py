#!/usr/bin/env python
"""replint — AST-based reproducibility contract checker for this repository.

Runs the :mod:`repro.lint` rule catalogue (RNG discipline, wall-clock bans,
error taxonomy, frozen specs, ``__all__`` parity, the ENGINE_EPOCH manifest
guard) over the requested paths and reports findings as text or JSON.

Usage::

    python scripts/replint.py src                     # lint, exit 1 on findings
    python scripts/replint.py src --format json       # machine-readable report
    python scripts/replint.py --update-epoch-manifest # regenerate engine-epoch.json
    python scripts/replint.py src --update-baseline   # rewrite replint-baseline.json

The baseline update preserves existing justifications and writes a TODO
placeholder for new entries — fill it in before committing (the checker and
the tests both refuse TODO/empty justifications in the committed file).
See docs/linting.md for the rule catalogue and the epoch-bump recipe.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro.lint  # noqa: F401
except ImportError:  # running from a checkout without an installed package
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lint import (
    Baseline,
    build_manifest,
    run_lint,
    update_baseline,
    write_manifest,
)
from repro.lint.baseline import TODO_JUSTIFICATION
from repro.lint.engine import DEFAULT_BASELINE_NAME, DEFAULT_MANIFEST_NAME, NON_BASELINABLE


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="replint", description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=["src"], help="files/directories to lint (default: src)")
    parser.add_argument("--root", default=str(REPO_ROOT), help="project root (default: the repo checkout)")
    parser.add_argument("--format", choices=("text", "json"), default="text", dest="fmt")
    parser.add_argument("--baseline", default=None, help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME})")
    parser.add_argument(
        "--epoch-manifest", default=None, help=f"epoch manifest (default: <root>/{DEFAULT_MANIFEST_NAME})"
    )
    parser.add_argument("--update-baseline", action="store_true", help="rewrite the baseline to cover current findings")
    parser.add_argument(
        "--update-epoch-manifest", action="store_true", help="regenerate the engine-epoch manifest and exit"
    )
    args = parser.parse_args(argv)

    root = Path(args.root).resolve()
    baseline_path = Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE_NAME
    manifest_path = Path(args.epoch_manifest) if args.epoch_manifest else root / DEFAULT_MANIFEST_NAME

    if args.update_epoch_manifest:
        manifest = build_manifest(root)
        write_manifest(manifest_path, manifest)
        print(f"{manifest_path}: epoch {manifest['epoch']}, {len(manifest['files'])} tracked module(s)")
        return 0

    baseline = Baseline.load(baseline_path)

    if args.update_baseline:
        report = run_lint(root, args.paths, baseline=Baseline(), manifest_path=manifest_path)
        relevant = [f for f in report.findings if f.rule_id not in NON_BASELINABLE]
        remaining = [f for f in report.findings if f.rule_id in NON_BASELINABLE]
        refreshed = update_baseline(baseline, relevant)
        refreshed.save(baseline_path)
        todos = sum(1 for e in refreshed.entries if e.justification == TODO_JUSTIFICATION)
        print(f"{baseline_path}: {len(refreshed.entries)} entr(ies), {todos} TODO justification(s) to fill in")
        if remaining:
            print("note: non-baselinable findings remain (epoch guard / syntax):", file=sys.stderr)
            for finding in remaining:
                print(f"  {finding.render()}", file=sys.stderr)
        return 0

    report = run_lint(root, args.paths, baseline=baseline, manifest_path=manifest_path)
    if args.fmt == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render_text())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
