#!/usr/bin/env python
"""Generate the docs pages that are derived from code.

Currently one page: ``docs/presets.md``, the scenario-preset reference table
rendered from :mod:`repro.scenarios.registry` plus the sizing-scale and
forecaster tables.  Run from the repository root::

    PYTHONPATH=src python scripts/generate_docs.py            # (re)write
    PYTHONPATH=src python scripts/generate_docs.py --check    # CI drift gate

``--check`` exits non-zero when the checked-in page differs from what the
registry would generate, so the docs can never silently drift from the code.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import inspect

from repro.fleet import (
    ARRIVAL_KIND_SUMMARIES,
    ARRIVAL_KINDS,
    METHOD_KIND_SUMMARIES,
    METHOD_KINDS,
    TIER_KIND_SUMMARIES,
    TIER_KINDS,
    FleetSpec,
    PlanSpec,
    fleet_catalog,
    get_fleet,
    get_plan,
    plan_catalog,
)
from repro.forecasting import forecaster_names, make_forecaster
from repro.scenarios import (
    CHANNEL_KIND_SUMMARIES,
    CHANNEL_KINDS,
    ENGINE_EPOCH,
    ResultStore,
    get_scale,
    get_scenario,
    scale_names,
    scenario_catalog,
)
from repro.service import (
    POLICY_KIND_SUMMARIES,
    POLICY_KINDS,
    get_service,
    service_catalog,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
PRESETS_PAGE = REPO_ROOT / "docs" / "presets.md"

HEADER = """\
# Scenario preset reference

<!-- GENERATED PAGE - edit scripts/generate_docs.py or the registries it
     reads, then run: PYTHONPATH=src python scripts/generate_docs.py -->

Named workloads registered in `repro.scenarios.registry`.  Fetch one with
`get_scenario(name)` and derive variants with `.with_(...)`,
`.with_channel(...)` and `.with_foreco(...)`; register project-specific
presets with `register_scenario`.
"""


def _preset_table() -> list[str]:
    lines = [
        "| Preset | Channel | Operator | PID | Description |",
        "| --- | --- | --- | --- | --- |",
    ]
    for name, description in scenario_catalog().items():
        if name.startswith("adversarial-"):
            continue  # rendered in their own provenance table
        spec = get_scenario(name)
        channel = spec.channel.describe().replace("|", "\\|")
        lines.append(
            f"| `{name}` | `{channel}` | {spec.operator} | "
            f"{'yes' if spec.use_pid else 'no'} | {description} |"
        )
    return lines


def _adversarial_table() -> list[str]:
    lines = [
        "| Preset | Spec hash | Channel | Provenance |",
        "| --- | --- | --- | --- |",
    ]
    for name, description in scenario_catalog().items():
        if not name.startswith("adversarial-"):
            continue
        spec = get_scenario(name)
        channel = spec.channel.describe().replace("|", "\\|")
        lines.append(f"| `{name}` | `{spec.spec_hash()}` | `{channel}` | {description} |")
    return lines


def _channel_kind_table() -> list[str]:
    lines = [
        "| Kind | Model |",
        "| --- | --- |",
    ]
    for kind in CHANNEL_KINDS:
        summary = CHANNEL_KIND_SUMMARIES.get(kind, "")
        lines.append(f"| `{kind}` | {summary} |")
    return lines


def _fleet_table() -> list[str]:
    lines = [
        "| Fleet | Operators | APs | Capacity | Service (ms) | Arrival | Tier | Template | Description |",
        "| --- | --- | --- | --- | --- | --- | --- | --- | --- |",
    ]
    for name, description in fleet_catalog().items():
        fleet = get_fleet(name)
        arrival = fleet.arrival
        if arrival != "simultaneous":
            arrival = f"{arrival} @ {fleet.arrival_rate_hz:g}/s"
        tier = fleet.tier
        if tier != "exact":
            tier = f"{tier} @ {fleet.hot_threshold:g}/{fleet.cold_tail}"
        lines.append(
            f"| `{name}` | {fleet.operators} | {fleet.aps} | {fleet.ap_capacity} | "
            f"{fleet.ap_service_ms:g} | {arrival} | {tier} | `{fleet.template.name}` | {description} |"
        )
    return lines


def _arrival_kind_table() -> list[str]:
    lines = [
        "| Arrival | Process |",
        "| --- | --- |",
    ]
    for kind in ARRIVAL_KINDS:
        lines.append(f"| `{kind}` | {ARRIVAL_KIND_SUMMARIES.get(kind, '')} |")
    return lines


def _tier_table() -> list[str]:
    lines = [
        "| Tier | Execution |",
        "| --- | --- |",
    ]
    for kind in TIER_KINDS:
        lines.append(f"| `{kind}` | {TIER_KIND_SUMMARIES.get(kind, '')} |")
    return lines


def _tier_knob_table() -> list[str]:
    defaults = FleetSpec()
    rows = [
        (
            "hot_threshold",
            f"{defaults.hot_threshold:g}",
            "saturation score in (0, 1] at or above which an AP is simulated exactly",
        ),
        (
            "cold_tail",
            f"`{defaults.cold_tail}`",
            "tail family of the cold-AP superposition model (`gaussian` or `heavy`)",
        ),
        (
            "cold_tail_index",
            f"{defaults.cold_tail_index:g}",
            "Pareto shape of the `heavy` tail (> 1; larger is thinner)",
        ),
    ]
    lines = [
        "| Knob | Default | Meaning |",
        "| --- | --- | --- |",
    ]
    for knob, default, meaning in rows:
        lines.append(f"| `{knob}` | {default} | {meaning} |")
    return lines


def _plan_table() -> list[str]:
    lines = [
        "| Plan | Fleet | Method | SLO (p99 / late / drop) | Bounds | Budget | Description |",
        "| --- | --- | --- | --- | --- | --- | --- |",
    ]
    for name, description in plan_catalog().items():
        spec = get_plan(name)
        slo = f"{spec.slo_p99:g} / {spec.slo_late:g} / {spec.slo_drop:g}"
        bounds = f"[{spec.min_capacity}, {spec.max_capacity}]"
        lines.append(
            f"| `{name}` | `{spec.fleet.name}` | `{spec.method}` | {slo} | "
            f"{bounds} | {spec.budget} | {description} |"
        )
    return lines


def _plan_method_table() -> list[str]:
    lines = [
        "| Method | Search |",
        "| --- | --- |",
    ]
    for kind in METHOD_KINDS:
        lines.append(f"| `{kind}` | {METHOD_KIND_SUMMARIES.get(kind, '')} |")
    return lines


def _plan_knob_table() -> list[str]:
    defaults = PlanSpec()
    rows = [
        ("slo_p99", f"{defaults.slo_p99:g}",
         "quality gate: p99 recovery at a probed capacity must reach this fraction"),
        ("slo_late", f"{defaults.slo_late:g}",
         "quality gate: mean late/lost fraction must stay at or below this"),
        ("slo_drop", f"{defaults.slo_drop:g}",
         "verdict gate: drop rate left at the *chosen* capacity must not exceed this"),
        ("min_capacity / max_capacity",
         f"{defaults.min_capacity} / {defaults.max_capacity}",
         "inclusive integer bounds of the capacity search"),
        ("budget", f"{defaults.budget}",
         "maximum distinct capacities evaluated (store hits and repeats are free)"),
        ("method", f"`{defaults.method}`",
         "search method (see the method table above)"),
        ("dual_step", f"{defaults.dual_step:g}",
         "dual-ascent step size (multipliers move `dual_step * violation` per iteration)"),
        ("max_iterations", f"{defaults.max_iterations}",
         "iteration safety cap for either method"),
    ]
    lines = [
        "| Knob | Default | Meaning |",
        "| --- | --- | --- |",
    ]
    for knob, default, meaning in rows:
        lines.append(f"| `{knob}` | {default} | {meaning} |")
    return lines


def _service_table() -> list[str]:
    lines = [
        "| Service | Fleet | Policy | Limit | Forecast | Snapshot every | Description |",
        "| --- | --- | --- | --- | --- | --- | --- |",
    ]
    for name, description in service_catalog().items():
        spec = get_service(name)
        forecast = (
            f"`{spec.forecast_algorithm}` @ {spec.forecast_record}"
            if spec.policy == "forecast-aware"
            else "—"
        )
        lines.append(
            f"| `{name}` | `{spec.fleet.name}` | `{spec.policy}` | "
            f"{spec.utilization_limit:g} | {forecast} | {spec.snapshot_every_slots} slots | "
            f"{description} |"
        )
    return lines


def _policy_table() -> list[str]:
    lines = [
        "| Policy | Admission rule |",
        "| --- | --- |",
    ]
    for kind in POLICY_KINDS:
        lines.append(f"| `{kind}` | {POLICY_KIND_SUMMARIES.get(kind, '')} |")
    return lines


def _scale_table() -> list[str]:
    lines = [
        "| Scale | Train reps | Test reps | Heatmap reps | Run (s) | Fig. 7 windows (ms) |",
        "| --- | --- | --- | --- | --- | --- |",
    ]
    for name in scale_names():
        scale = get_scale(name)
        windows = ", ".join(str(w) for w in scale.forecast_windows_ms)
        lines.append(
            f"| `{scale.name}` | {scale.train_repetitions} | {scale.test_repetitions} | "
            f"{scale.heatmap_repetitions} | {scale.run_seconds:g} | {windows} |"
        )
    return lines


def _forecaster_table() -> list[str]:
    lines = [
        "| Name | Class | Batched kernel |",
        "| --- | --- | --- |",
    ]
    for name in forecaster_names():
        try:
            forecaster = make_forecaster(name, record=2)
        except Exception:  # pragma: no cover - runtime-registered class quirks
            continue
        if not type(forecaster).__module__.startswith("repro.forecasting"):
            # Runtime-registered project forecasters are not part of the
            # shipped reference (and would make the generated page depend on
            # what happens to be registered in this process).
            continue
        batched = "yes" if forecaster.supports_batch_predict else "no (serial fallback)"
        lines.append(f"| `{name}` | `{type(forecaster).__name__}` | {batched} |")
    return lines


def _store_table() -> list[str]:
    defaults = {
        name: parameter.default
        for name, parameter in inspect.signature(ResultStore.__init__).parameters.items()
        if parameter.default is not inspect.Parameter.empty
    }
    rows = [
        ("root", "(required)", "store directory; epochs coexist under one root"),
        (
            "epoch",
            str(defaults.get("epoch", ENGINE_EPOCH)),
            "engine/code epoch (`ENGINE_EPOCH`); entries from other epochs are invisible",
        ),
        (
            "max_entries",
            "unbounded" if defaults.get("max_entries") is None else str(defaults["max_entries"]),
            "LRU cap on stored results",
        ),
        (
            "max_bytes",
            "unbounded" if defaults.get("max_bytes") is None else str(defaults["max_bytes"]),
            "LRU cap on total shard bytes",
        ),
    ]
    lines = [
        "| Knob | Default | Meaning |",
        "| --- | --- | --- |",
    ]
    for knob, default, meaning in rows:
        lines.append(f"| `{knob}` | {default} | {meaning} |")
    return lines


def render() -> str:
    """The full generated page as one string."""
    parts = [HEADER]
    parts.append("## Presets\n")
    parts.extend(_preset_table())
    parts.append("\nA `compound[...]` channel superposes stages: a command traverses")
    parts.append("every stage, delays add up, and it is lost if any stage loses it.")
    parts.append("Per-stage RNG seeds are hash-derived from the stage's *content*, so")
    parts.append("reordering stages never changes the realisations or the loss set.\n")
    parts.append("## Adversarial presets (search-discovered)\n")
    parts.extend(_adversarial_table())
    parts.append("\nWorst cases found by the coverage-guided scenario search")
    parts.append("(`repro.scenarios.search`, CLI: `foreco-experiments search --budget N")
    parts.append("[--promote]`) and pinned in the registry as standing regression")
    parts.append("presets.  The name carries the spec-hash prefix of the discovered")
    parts.append("point; knob values are frozen at full precision so the hash — and any")
    parts.append("memoized store entry — stays stable.  Workflow and tolerances:")
    parts.append("[Validation](validation.md).\n")
    parts.append("## Channel kinds\n")
    parts.extend(_channel_kind_table())
    parts.append("\nEvery kind samples through `sample_channel_delays` (serial, one")
    parts.append("repetition per seed) and `sample_channel_delays_batch` (all")
    parts.append("repetitions as one `(B, n)` array).  The two paths are bit-identical")
    parts.append("per seed — the serial sampler is the oracle — and the batched path")
    parts.append("is what `SessionEngine` uses for multi-repetition specs (see")
    parts.append("[Performance](performance.md)).\n")
    parts.append("## Fleet presets\n")
    parts.extend(_fleet_table())
    parts.append("\nA fleet runs `operators` concurrent sessions of its template scenario,")
    parts.append("statically assigned to AP `i % aps`, with per-AP admission control")
    parts.append("(`capacity` concurrent sessions) and a shared backlog that couples the")
    parts.append("co-scheduled sessions' delays (`service` ms of AP air time per")
    parts.append("delivered command).  Fetch one with `repro.fleet.get_fleet(name)`, run")
    parts.append("it with `FleetEngine` or any `SweepExecutor`, or from the CLI:")
    parts.append("`foreco-experiments fleet [--fleet N]`.  See the")
    parts.append("[fleet operations guide](fleet.md).\n")
    parts.extend(_arrival_kind_table())
    parts.append("")
    parts.append("## Simulation tiers\n")
    parts.extend(_tier_table())
    parts.append("\nThe `hybrid` tier classifies every AP hot or cold with the Bianchi")
    parts.append("saturation score (`repro.wireless.bianchi.saturation_score`) and")
    parts.append("services cold APs with the analytic superposition model")
    parts.append("(`repro.wireless.superposition`) instead of the exact Lindley")
    parts.append("backlog.  Tier knobs on `FleetSpec` (hash-relevant: an exact and a")
    parts.append("hybrid run occupy different store addresses, but share arrivals and")
    parts.append("channels through `workload_identity()`):\n")
    parts.extend(_tier_knob_table())
    parts.append("\nOverride from the CLI with `foreco-experiments --fleet-tier")
    parts.append("hybrid|exact`; crossover guidance and the error bound live in the")
    parts.append('[fleet operations guide](fleet.md), "City scale".\n')
    parts.append("## Capacity-plan presets (SLO-driven search)\n")
    parts.extend(_plan_table())
    parts.append("\nA plan searches the per-AP admission capacity of its target fleet")
    parts.append("directly against the SLO gates — no grid sweep.  Fetch one with")
    parts.append("`repro.fleet.get_plan(name)`, run it with `repro.plan(...)` or a")
    parts.append("`CapacityPlanner`, or from the CLI: `foreco-experiments plan")
    parts.append("[--slo-p99 F] [--slo-drop F] [--budget N]`.  Every probe is a real")
    parts.append("fleet evaluation memoized through the result store; finished plans")
    parts.append("persist under their own content addresses, so a warm rerun loads the")
    parts.append('plan record and recomputes nothing.  See [fleet operations](fleet.md),')
    parts.append('"Capacity planning".\n')
    parts.extend(_plan_method_table())
    parts.append("\nPlanner knobs on `PlanSpec` (all hash-relevant except `name`; the")
    parts.append("target fleet's initial `ap_capacity` is pinned out of the identity —")
    parts.append("the capacity is the search variable):\n")
    parts.extend(_plan_knob_table())
    parts.append("")
    parts.append("## Service presets (live admission)\n")
    parts.extend(_service_table())
    parts.append("\nA service runs its fleet workload *live*: operator sessions arrive on")
    parts.append("the virtual clock and an admission policy places, migrates or drops")
    parts.append("each one as it arrives, streaming incremental snapshots.  Fetch one")
    parts.append("with `repro.get_service(name)`, run it with `repro.serve(...)` or any")
    parts.append("`SweepExecutor`, or from the CLI: `foreco-experiments serve [--policy")
    parts.append('NAME] [--until SECONDS]`.  See [fleet operations](fleet.md), "Live')
    parts.append('operations".\n')
    parts.extend(_policy_table())
    parts.append("")
    parts.append("## Sizing scales\n")
    parts.extend(_scale_table())
    parts.append("\n`full` approaches the paper's sweep sizes; `ci` keeps every")
    parts.append("experiment in the seconds range.  `seq2seq` layer sizes and epochs")
    parts.append("also scale (paper: 200/30 units at full scale).\n")
    parts.append("## Forecasting algorithms\n")
    parts.extend(_forecaster_table())
    parts.append(
        "\nAll registry names are accepted by `ScenarioSpec.foreco.algorithm` and"
    )
    parts.append("`make_forecaster`; add custom algorithms with `register_forecaster`.\n")
    parts.append("## Result store\n")
    parts.extend(_store_table())
    parts.append(f"\nThe current engine epoch is **{ENGINE_EPOCH}**.  `ResultStore` persists")
    parts.append("finished sessions on disk, content-addressed by `spec_hash()` + epoch,")
    parts.append("so sweeps compute only the specs whose results are not already stored")
    parts.append("(`SweepExecutor(store=...)`, `foreco-experiments --store PATH`); see")
    parts.append("[Architecture](architecture.md) and [Performance](performance.md).")
    return "\n".join(parts) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the checked-in page matches the registries (exit 1 on drift)",
    )
    args = parser.parse_args(argv)
    content = render()
    if args.check:
        on_disk = PRESETS_PAGE.read_text(encoding="utf-8") if PRESETS_PAGE.exists() else ""
        if on_disk != content:
            sys.stderr.write(
                "docs/presets.md is out of date - run "
                "'PYTHONPATH=src python scripts/generate_docs.py'\n"
            )
            return 1
        print("docs/presets.md is up to date")
        return 0
    PRESETS_PAGE.write_text(content, encoding="utf-8")
    print(f"wrote {PRESETS_PAGE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
