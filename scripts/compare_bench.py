#!/usr/bin/env python
"""Diff a benchmark-trajectory JSON against the committed baseline.

CI runs the benchmark suite with ``FORECO_BENCH_JSON=BENCH_6.json`` (see
``benchmarks/conftest.py``), uploads the file as an artifact, then runs::

    python scripts/compare_bench.py BENCH_6.json benchmarks/baseline.json

The comparison is **warn-only**: CI hardware is noisy and shared, so a wall
time more than ``--threshold`` (default 20%) over baseline — or a speedup
factor more than 20% under it — prints a warning (a ``::warning::``
annotation on GitHub Actions) but never fails the build.  Hard performance
floors live in the benchmarks themselves (the >=3x batch gates, the >=10x
warm-store gate); this script tracks the *trajectory* between those floors.

Exit codes: 0 — compared (with or without warnings); 2 — a file is missing
or malformed (the pipeline itself is broken, which SHOULD fail the step).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path


def _load(path: str) -> dict:
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        sys.stderr.write(f"compare_bench: cannot read {path}: {exc}\n")
        raise SystemExit(2) from exc
    if not isinstance(payload.get("benchmarks"), dict):
        sys.stderr.write(f"compare_bench: {path} has no 'benchmarks' table\n")
        raise SystemExit(2)
    return payload


def _warn(message: str) -> None:
    prefix = "::warning title=benchmark regression::" if os.environ.get("GITHUB_ACTIONS") else "WARNING: "
    print(f"{prefix}{message}")


def compare(current: dict, baseline: dict, threshold: float) -> list[str]:
    """Return the list of regression messages (also printed as warnings)."""
    warnings: list[str] = []
    current_benchmarks = current["benchmarks"]
    for test, base_metrics in sorted(baseline["benchmarks"].items()):
        cur_metrics = current_benchmarks.get(test)
        if cur_metrics is None:
            warnings.append(f"{test}: present in baseline but missing from this run")
            continue
        for metric, base_value in sorted(base_metrics.items()):
            cur_value = cur_metrics.get(metric)
            if cur_value is None or not base_value:
                continue
            ratio = cur_value / base_value
            if metric == "wall_s" or metric.endswith("_s"):
                # Wall times regress upward.  Sub-50ms timings are pure
                # scheduler noise at any threshold — never warn on them.
                if max(base_value, cur_value) < 0.05:
                    continue
                if ratio > 1.0 + threshold:
                    warnings.append(
                        f"{test}.{metric}: {cur_value:.3f}s vs baseline "
                        f"{base_value:.3f}s (+{100 * (ratio - 1):.0f}%)"
                    )
            elif metric.startswith("speedup"):
                # Speedup factors regress downward.
                if ratio < 1.0 - threshold:
                    warnings.append(
                        f"{test}.{metric}: x{cur_value:.1f} vs baseline "
                        f"x{base_value:.1f} (-{100 * (1 - ratio):.0f}%)"
                    )
    return warnings


def render_table(current: dict, baseline: dict) -> str:
    """Side-by-side table of every metric present in either file."""
    lines = [f"{'benchmark.metric':<58s} {'baseline':>10s} {'current':>10s} {'delta':>8s}"]
    lines.append("-" * len(lines[0]))
    tests = sorted(set(baseline["benchmarks"]) | set(current["benchmarks"]))
    for test in tests:
        base_metrics = baseline["benchmarks"].get(test, {})
        cur_metrics = current["benchmarks"].get(test, {})
        for metric in sorted(set(base_metrics) | set(cur_metrics)):
            base_value = base_metrics.get(metric)
            cur_value = cur_metrics.get(metric)
            base_text = f"{base_value:.3f}" if base_value is not None else "-"
            cur_text = f"{cur_value:.3f}" if cur_value is not None else "-"
            if base_value and cur_value is not None:
                delta = f"{100 * (cur_value / base_value - 1):+.0f}%"
            else:
                delta = "-"
            lines.append(f"{test + '.' + metric:<58s} {base_text:>10s} {cur_text:>10s} {delta:>8s}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="trajectory JSON from this run (BENCH_*.json)")
    parser.add_argument("baseline", help="committed baseline (benchmarks/baseline.json)")
    parser.add_argument(
        "--threshold", type=float, default=0.20,
        help="relative regression that triggers a warning (default: 0.20 = 20%%)",
    )
    args = parser.parse_args(argv)
    current = _load(args.current)
    baseline = _load(args.baseline)
    if current.get("scale") != baseline.get("scale"):
        _warn(
            f"scale mismatch: run at {current.get('scale')!r}, baseline at "
            f"{baseline.get('scale')!r} — wall-time deltas are not comparable"
        )
    print(render_table(current, baseline))
    warnings = compare(current, baseline, args.threshold)
    for message in warnings:
        _warn(message)
    if warnings:
        print(f"\n{len(warnings)} regression warning(s) over {100 * args.threshold:.0f}% (warn-only)")
    else:
        print("\nno regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
