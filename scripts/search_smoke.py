#!/usr/bin/env python
"""CI smoke test for the coverage-guided scenario search, end to end.

Runs a 10-candidate search twice through the real CLI code path
(:func:`repro.experiments.runner.run_experiments` with the ``search``
keyword) against a temporary store and asserts the memoization contract on
a clean checkout:

* the first pass computes every probe (0 hits, 10 misses) and persists it;
* the second pass is **100% store hits** — nothing recomputed — and
  returns probe-for-probe identical scores in the same order.

Exit code 0 on success, 1 with a diagnostic on any violated expectation.
Run it from an environment where ``repro`` is importable (CI installs the
package; locally ``PYTHONPATH=src python scripts/search_smoke.py`` works).
"""

from __future__ import annotations

import json
import sys
import tempfile

from repro.experiments.runner import run_experiments

BUDGET = 10
SEED = 11


def _search(store: str, resume: bool) -> dict:
    report = run_experiments(
        ["search"], scale="ci", seed=SEED, jobs=2, fmt="json",
        budget=BUDGET, store=store, resume=resume,
    )
    return json.loads(report)["search"]


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="foreco-search-smoke-") as root:
        first = _search(root, resume=False)
        second = _search(root, resume=True)

    failures = []
    if first["evaluated"] != BUDGET:
        failures.append(f"cold pass evaluated {first['evaluated']} probes, expected {BUDGET}")
    if (first["store_hits"], first["store_misses"]) != (0, BUDGET):
        failures.append(
            f"cold pass expected 0/{BUDGET} hits/misses, got "
            f"{first['store_hits']}/{first['store_misses']}"
        )
    if (second["store_hits"], second["store_misses"]) != (BUDGET, 0):
        failures.append(
            f"warm pass expected 100% hits, got "
            f"{second['store_hits']}/{second['store_misses']}"
        )
    if first["probes"] != second["probes"]:
        failures.append("warm probes differ from the cold pass (determinism broken)")

    if failures:
        for failure in failures:
            print(f"search smoke FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"search smoke ok: {BUDGET} probes computed once, second pass "
        f"{second['store_hits']}/{BUDGET} hits (100% reused), probes identical"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
