#!/usr/bin/env python
"""CI smoke test for the SLO-driven capacity planner, end to end.

Runs the ``plan`` keyword through the real CLI code path
(:func:`repro.experiments.runner.run_experiments`) against a temporary
store and asserts the planner's whole contract on a clean checkout:

* both built-in plan presets recover the documented shared-ap knee
  (capacity 3 ops/AP, exactly) and declare it feasible;
* the cold pass computes every probe, persists probe shards *and* the
  finished plan records;
* the warm pass is **100% store hits** — the plan records are loaded
  whole, zero probes recomputed — and renders a bit-identical ``plans``
  section;
* a ``--jobs 4`` process-backend pass (fresh store) produces the same
  plans byte for byte (jobs/backend invariance).

Exit code 0 on success, 1 with a diagnostic on any violated expectation.
Run it from an environment where ``repro`` is importable (CI installs the
package; locally ``PYTHONPATH=src python scripts/plan_smoke.py`` works).
"""

from __future__ import annotations

import json
import sys
import tempfile

from repro.experiments.runner import run_experiments

SEED = 11
KNEE = 3


def _plan(store: str, resume: bool, jobs: int = 2, backend: str = "thread") -> dict:
    report = run_experiments(
        ["plan"], scale="ci", seed=SEED, jobs=jobs, backend=backend,
        fmt="json", store=store, resume=resume,
    )
    return json.loads(report)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="foreco-plan-smoke-") as root:
        first = _plan(root, resume=False)
        second = _plan(root, resume=True)
    with tempfile.TemporaryDirectory(prefix="foreco-plan-smoke-") as root:
        process = _plan(root, resume=False, jobs=4, backend="process")

    failures = []
    for row in first["plans"]:
        if row["capacity"] != KNEE:
            failures.append(
                f"{row['plan']} ({row['method']}) chose capacity "
                f"{row['capacity']}, expected the knee at {KNEE}"
            )
        if not row["feasible"]:
            failures.append(f"{row['plan']} declared the knee infeasible")
    n_plans = len(first["plans"])
    if first["store"]["hits"] >= first["store"]["misses"]:
        failures.append(
            f"cold pass expected mostly misses, got "
            f"{first['store']['hits']}/{first['store']['misses']} hits/misses"
        )
    if second["store"]["misses"] != 0 or second["store"]["hits"] != n_plans:
        failures.append(
            f"warm pass expected {n_plans}/0 hits/misses (plan records reused, "
            f"zero recompute), got "
            f"{second['store']['hits']}/{second['store']['misses']}"
        )
    if second["plans"] != first["plans"]:
        failures.append("warm plans differ from the cold pass (determinism broken)")
    if process["plans"] != first["plans"]:
        failures.append("process-backend plans differ from thread plans (invariance broken)")

    if failures:
        for failure in failures:
            print(f"plan smoke FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"plan smoke ok: {n_plans} presets at the knee (capacity {KNEE}), warm pass "
        f"{second['store']['hits']}/{n_plans} plan records reused (zero recompute), "
        f"process backend identical"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
